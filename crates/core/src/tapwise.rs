//! Tap-wise quantization scales (Section III of the paper).
//!
//! Instead of one scalar scale per tensor, tap-wise quantization assigns each
//! Winograd-domain tap `(i, j)` its own scale. Two scale matrices exist:
//! `S_B` for the transformed input feature maps and `S_G` for the transformed
//! weights; the output rescaling uses their elementwise product
//! `S_BG = S_G ⊙ S_B`, applied once before the back-transformation.
//!
//! For hardware friendliness the scales can be restricted to powers of two so
//! that every (de)quantization inside the Winograd domain becomes a shift.

use crate::calibration::TapCalibrator;
use crate::matrices::WinogradMatrices;
use crate::quant::QuantBits;
use crate::transform::{input_transform, weight_transform};
use serde::{Deserialize, Serialize};
use wino_tensor::Tensor;

/// How the tap-wise scaling factors are represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScaleMode {
    /// Unrestricted FP32 scales (the `⊙` rows of Table II).
    Float,
    /// Power-of-two scales, `s = 2^k`, so rescaling is a shift (the `2x` rows).
    PowerOfTwo,
}

/// A matrix of per-tap quantization scales for one operand (inputs or weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TapScaleMatrix {
    scales: Tensor<f32>,
    bits: QuantBits,
    mode: ScaleMode,
}

impl TapScaleMatrix {
    /// Builds scales from calibrated per-tap maxima: `s_{ij} = max_{ij} / (2^{b-1} - 1)`,
    /// optionally rounded up to powers of two.
    pub fn from_max_matrix(max: &Tensor<f32>, bits: QuantBits, mode: ScaleMode) -> Self {
        assert_eq!(max.rank(), 2, "per-tap maxima must form a square matrix");
        let denom = bits.max_value() as f32;
        let scales = max.map(|m| {
            let s = if m > 0.0 { m / denom } else { 1.0 };
            match mode {
                ScaleMode::Float => s,
                ScaleMode::PowerOfTwo => 2.0_f32.powi(s.log2().ceil() as i32),
            }
        });
        Self { scales, bits, mode }
    }

    /// Builds a *uniform* scale matrix (every tap shares the same scale), used
    /// as the "single scalar per transformation" baseline the paper compares
    /// against.
    pub fn uniform(t: usize, max_abs: f32, bits: QuantBits, mode: ScaleMode) -> Self {
        let max = Tensor::filled(&[t, t], max_abs);
        Self::from_max_matrix(&max, bits, mode)
    }

    /// Builds a scale matrix directly from explicit scales (used by the learned
    /// log2-scale training path).
    ///
    /// # Panics
    ///
    /// Panics if any scale is not strictly positive.
    pub fn from_scales(scales: Tensor<f32>, bits: QuantBits, mode: ScaleMode) -> Self {
        assert!(
            scales.as_slice().iter().all(|&s| s > 0.0),
            "scales must be positive"
        );
        Self { scales, bits, mode }
    }

    /// The scale of tap `(r, c)`.
    pub fn scale(&self, r: usize, c: usize) -> f32 {
        self.scales.at2(r, c)
    }

    /// The full scale matrix.
    pub fn scales(&self) -> &Tensor<f32> {
        &self.scales
    }

    /// The integer bit-width the scales quantize into.
    pub fn bits(&self) -> QuantBits {
        self.bits
    }

    /// The representation mode of the scales.
    pub fn mode(&self) -> ScaleMode {
        self.mode
    }

    /// The shift amounts `log2(s)` (exact integers in power-of-two mode).
    pub fn shifts(&self) -> Tensor<f32> {
        self.scales.map(|s| s.log2())
    }

    /// Quantizes a Winograd-domain tile tap-wise, returning integer codes.
    ///
    /// # Panics
    ///
    /// Panics if the tile shape does not match the scale matrix.
    pub fn quantize_tile(&self, tile: &Tensor<f32>) -> Tensor<i32> {
        assert_eq!(
            tile.dims(),
            self.scales.dims(),
            "quantize_tile: shape mismatch"
        );
        let (lo, hi) = (self.bits.min_value(), self.bits.max_value());
        tile.zip_map(&self.scales, |v, s| ((v / s).round() as i32).clamp(lo, hi))
    }

    /// Dequantizes integer codes back to FP32 tap-wise.
    pub fn dequantize_tile(&self, tile: &Tensor<i32>) -> Tensor<f32> {
        assert_eq!(
            tile.dims(),
            self.scales.dims(),
            "dequantize_tile: shape mismatch"
        );
        tile.zip_map(&self.scales, |q, s| q as f32 * s)
    }

    /// Quantize-then-dequantize (fake quantization) of a Winograd-domain tile.
    pub fn fake_quantize_tile(&self, tile: &Tensor<f32>) -> Tensor<f32> {
        self.dequantize_tile(&self.quantize_tile(tile))
    }
}

/// The pair of tap-wise scale matrices `(S_B, S_G)` for one convolution layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TapwiseScales {
    /// Scales of the transformed input feature maps (`S_B`).
    pub input: TapScaleMatrix,
    /// Scales of the transformed weights (`S_G`).
    pub weight: TapScaleMatrix,
}

impl TapwiseScales {
    /// Calibrates tap-wise scales from a weight tensor and a sample of input
    /// activations for one layer.
    ///
    /// All `C_out × C_in` kernels and all input tiles of the sample are
    /// transformed into the Winograd domain; the per-tap maxima define the
    /// scales, optionally rounded to powers of two.
    ///
    /// `wino_bits` is the bit-width used inside the Winograd domain (8 for the
    /// plain `int8` configuration, 9/10 for the `int8/9` and `int8/10` rows of
    /// Tables II and III).
    pub fn calibrate(
        weights: &Tensor<f32>,
        input_sample: &Tensor<f32>,
        mats: &WinogradMatrices,
        wino_bits: QuantBits,
        mode: ScaleMode,
    ) -> Self {
        let t = mats.input_tile();
        // Weights: per-tap max over all (C_out, C_in) kernels.
        let mut wcal = TapCalibrator::peak(t);
        let (c_out, c_in) = (weights.dims()[0], weights.dims()[1]);
        for co in 0..c_out {
            for ci in 0..c_in {
                let mut k = Tensor::<f32>::zeros(&[3, 3]);
                for ky in 0..3 {
                    for kx in 0..3 {
                        k.set2(ky, kx, weights.at4(co, ci, ky, kx));
                    }
                }
                wcal.observe_tile(&weight_transform(&k, mats));
            }
        }

        // Inputs: per-tap max over all tiles of the sample.
        let mut icarl = TapCalibrator::peak(t);
        let grid = crate::transform::TileGrid::new(
            input_sample.dims()[2],
            input_sample.dims()[3],
            mats.output_tile(),
            1,
        );
        for n in 0..input_sample.dims()[0] {
            for c in 0..input_sample.dims()[1] {
                for ty in 0..grid.tiles_h {
                    for tx in 0..grid.tiles_w {
                        let tile =
                            crate::transform::extract_input_tile(input_sample, n, c, ty, tx, &grid);
                        icarl.observe_tile(&input_transform(&tile, mats));
                    }
                }
            }
        }

        Self {
            input: TapScaleMatrix::from_max_matrix(&icarl.max_matrix(), wino_bits, mode),
            weight: TapScaleMatrix::from_max_matrix(&wcal.max_matrix(), wino_bits, mode),
        }
    }

    /// Calibrates *uniform* scales: one scalar shared by all taps of the
    /// transformed weights and one for the transformed inputs. This is the
    /// prior Winograd-domain quantization approach (Gong et al., Li et al.)
    /// that the paper's tap-wise scheme improves on; it is kept as the ablation
    /// baseline of Table II.
    pub fn calibrate_uniform(
        weights: &Tensor<f32>,
        input_sample: &Tensor<f32>,
        mats: &WinogradMatrices,
        wino_bits: QuantBits,
        mode: ScaleMode,
    ) -> Self {
        let per_tap = Self::calibrate(weights, input_sample, mats, wino_bits, mode);
        let t = mats.input_tile();
        let w_max = per_tap.weight.scales().abs_max() * wino_bits.max_value() as f32;
        let i_max = per_tap.input.scales().abs_max() * wino_bits.max_value() as f32;
        Self {
            input: TapScaleMatrix::uniform(t, i_max, wino_bits, mode),
            weight: TapScaleMatrix::uniform(t, w_max, wino_bits, mode),
        }
    }

    /// The combined output rescaling matrix `S_BG = S_G ⊙ S_B`, applied once
    /// before the back-transformation.
    pub fn sbg(&self) -> Tensor<f32> {
        self.input.scales().mul(self.weight.scales())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{TileSize, WinogradMatrices};
    use wino_tensor::normal;

    #[test]
    fn power_of_two_scales_are_powers_of_two() {
        let max = Tensor::from_vec(vec![0.7_f32, 3.0, 100.0, 0.004], &[2, 2]).unwrap();
        let s = TapScaleMatrix::from_max_matrix(&max, QuantBits::int8(), ScaleMode::PowerOfTwo);
        for &v in s.scales().as_slice() {
            let l = v.log2();
            assert!((l - l.round()).abs() < 1e-6, "{v} is not a power of two");
        }
    }

    #[test]
    fn po2_scale_never_below_float_scale() {
        // Rounding up guarantees no additional clamping relative to the float scale.
        let max = Tensor::from_vec(vec![0.9_f32, 5.0, 0.01, 64.0], &[2, 2]).unwrap();
        let float = TapScaleMatrix::from_max_matrix(&max, QuantBits::int8(), ScaleMode::Float);
        let po2 = TapScaleMatrix::from_max_matrix(&max, QuantBits::int8(), ScaleMode::PowerOfTwo);
        for (f, p) in float
            .scales()
            .as_slice()
            .iter()
            .zip(po2.scales().as_slice())
        {
            assert!(p >= f);
            assert!(*p <= 2.0 * f);
        }
    }

    #[test]
    fn quantize_dequantize_tile_round_trip() {
        let max = Tensor::filled(&[6, 6], 2.0);
        let s = TapScaleMatrix::from_max_matrix(&max, QuantBits::int8(), ScaleMode::Float);
        let tile = normal(&[6, 6], 0.0, 0.5, 77);
        let fq = s.fake_quantize_tile(&tile);
        // Error bounded by half a quantization step per tap.
        for (a, b) in fq.as_slice().iter().zip(tile.as_slice()) {
            assert!((a - b).abs() <= s.scale(0, 0) / 2.0 + 1e-6);
        }
    }

    #[test]
    fn tap_wise_beats_uniform_when_ranges_differ() {
        // Construct a tile whose taps have wildly different magnitudes, as the
        // F4 weight transform does (Fig. 1 of the paper).
        let tile = Tensor::from_fn(&[4, 4], |i| {
            if i < 2 {
                100.0
            } else {
                0.01 * (i as f32 + 1.0)
            }
        });
        let per_tap_max = tile.map(|v| v.abs());
        let tap =
            TapScaleMatrix::from_max_matrix(&per_tap_max, QuantBits::int8(), ScaleMode::Float);
        let uni = TapScaleMatrix::uniform(4, tile.abs_max(), QuantBits::int8(), ScaleMode::Float);
        let e_tap = tap.fake_quantize_tile(&tile).relative_error(&tile);
        let e_uni = uni.fake_quantize_tile(&tile).relative_error(&tile);
        assert!(
            e_tap < e_uni / 10.0,
            "tap-wise {e_tap} not clearly better than uniform {e_uni}"
        );
    }

    #[test]
    fn calibrated_scales_cover_the_observed_range() {
        let mats = WinogradMatrices::for_tile(TileSize::F4);
        let w = normal(&[4, 3, 3, 3], 0.0, 0.5, 3);
        let x = normal(&[1, 3, 8, 8], 0.0, 1.0, 4);
        let scales =
            TapwiseScales::calibrate(&w, &x, &mats, QuantBits::int8(), ScaleMode::PowerOfTwo);
        // Quantizing the transformed weights with the calibrated scales must not
        // clamp (all codes strictly inside the int8 range except possibly the max).
        let mut k = Tensor::<f32>::zeros(&[3, 3]);
        for ky in 0..3 {
            for kx in 0..3 {
                k.set2(ky, kx, w.at4(0, 0, ky, kx));
            }
        }
        let u = weight_transform(&k, &mats);
        let q = scales.weight.quantize_tile(&u);
        for &c in q.as_slice() {
            assert!((-127..=127).contains(&c));
        }
        let sbg = scales.sbg();
        assert_eq!(sbg.dims(), &[6, 6]);
    }

    #[test]
    fn shifts_are_integers_in_po2_mode() {
        let max = Tensor::from_vec(vec![1.0_f32, 8.0, 0.25, 40.0], &[2, 2]).unwrap();
        let s = TapScaleMatrix::from_max_matrix(&max, QuantBits::new(10), ScaleMode::PowerOfTwo);
        for &sh in s.shifts().as_slice() {
            assert!((sh - sh.round()).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_explicit_scale_panics() {
        let scales = Tensor::from_vec(vec![1.0_f32, 0.0], &[1, 2]).unwrap();
        let _ = TapScaleMatrix::from_scales(scales, QuantBits::int8(), ScaleMode::Float);
    }
}
