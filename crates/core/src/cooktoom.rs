//! Toom–Cook construction of Winograd transformation matrices.
//!
//! The hard-coded matrices in [`crate::matrices`] come from the paper; this
//! module re-derives transformation matrices for arbitrary polynomial root
//! points using the Toom–Cook construction (evaluation at `α−1` finite points
//! plus the point at infinity, followed by Lagrange interpolation). It serves
//! two purposes:
//!
//! * it cross-checks the hard-coded matrices (any valid matrix set must
//!   compute the same convolution), and
//! * it lets users experiment with alternative root points, which is how
//!   related work (Legendre bases, error-optimised points) improves F4/F6
//!   numerics.
//!
//! The construction here is for the correlation form `F(m, r)`:
//! `Y = Aᵀ [(G·g) ⊙ (Bᵀ·d)]`, with `G[t][k] = p_t^k` (filter evaluation),
//! `Bᵀ = Cᵀ` where `C` holds the interpolation polynomial coefficients, and
//! `Aᵀ = Eᵀ` where `E` evaluates the length-`m` polynomial at the points.

use wino_tensor::Tensor;

/// Multiplies the polynomial `poly` (coefficient vector, lowest degree first)
/// by the monomial `(x - root)`.
fn poly_mul_monomial(poly: &[f64], root: f64) -> Vec<f64> {
    let mut out = vec![0.0; poly.len() + 1];
    for (i, &c) in poly.iter().enumerate() {
        out[i] -= root * c;
        out[i + 1] += c;
    }
    out
}

/// Coefficients of the Lagrange basis polynomial for point `points[idx]`
/// (degree `points.len() - 1` over all points except `idx`... i.e. degree
/// `points.len() - 1 - 1 + 1`): `l_idx(x) = Π_{j≠idx} (x − p_j) / (p_idx − p_j)`.
fn lagrange_basis(points: &[f64], idx: usize) -> Vec<f64> {
    let mut num = vec![1.0_f64];
    let mut denom = 1.0_f64;
    for (j, &p) in points.iter().enumerate() {
        if j == idx {
            continue;
        }
        num = poly_mul_monomial(&num, p);
        denom *= points[idx] - p;
    }
    num.iter().map(|c| c / denom).collect()
}

/// Coefficients of `M(x) = Π_j (x − p_j)`.
fn master_poly(points: &[f64]) -> Vec<f64> {
    let mut m = vec![1.0_f64];
    for &p in points {
        m = poly_mul_monomial(&m, p);
    }
    m
}

/// Builds Winograd `F(m, r)` transformation matrices from `m + r - 2` finite
/// root points (the point at infinity is always added implicitly).
///
/// Returns matrices with the same shapes as [`WinogradMatrices`]: `Bᵀ` is
/// `[α×α]`, `G` is `[α×r]`, `Aᵀ` is `[m×α]`, with `α = m + r − 1`.
///
/// # Panics
///
/// Panics if the number of points is not `m + r − 2` or points repeat.
pub fn cook_toom_matrices(
    m: usize,
    r: usize,
    points: &[f64],
) -> (Tensor<f32>, Tensor<f32>, Tensor<f32>) {
    let alpha = m + r - 1;
    assert_eq!(
        points.len(),
        alpha - 1,
        "F({m},{r}) needs {} finite points (plus infinity)",
        alpha - 1
    );
    for (i, &a) in points.iter().enumerate() {
        for &b in &points[i + 1..] {
            assert!((a - b).abs() > 1e-12, "root points must be distinct");
        }
    }

    // G: evaluate the r-tap filter polynomial at each point; infinity row picks
    // the leading coefficient.
    let mut g = Tensor::<f32>::zeros(&[alpha, r]);
    for (t, &p) in points.iter().enumerate() {
        let mut pw = 1.0_f64;
        for k in 0..r {
            g.set2(t, k, pw as f32);
            pw *= p;
        }
    }
    g.set2(alpha - 1, r - 1, 1.0);

    // A^T: evaluate the m-coefficient polynomial at each point (transposed).
    let mut at = Tensor::<f32>::zeros(&[m, alpha]);
    for (t, &p) in points.iter().enumerate() {
        let mut pw = 1.0_f64;
        for j in 0..m {
            at.set2(j, t, pw as f32);
            pw *= p;
        }
    }
    at.set2(m - 1, alpha - 1, 1.0);

    // B^T = C^T where column t of C holds the coefficients of the Lagrange
    // basis polynomial of point t (degree α−2) and the last column holds the
    // coefficients of M(x) (degree α−1).
    let mut bt = Tensor::<f32>::zeros(&[alpha, alpha]);
    for t in 0..alpha - 1 {
        let l = lagrange_basis(points, t);
        for (j, &c) in l.iter().enumerate() {
            // C[j][t] = c  =>  B^T[t][j] = c
            bt.set2(t, j, c as f32);
        }
    }
    let mpoly = master_poly(points);
    for (j, &c) in mpoly.iter().enumerate() {
        bt.set2(alpha - 1, j, c as f32);
    }

    (bt, g, at)
}

/// Checks that a set of transformation matrices computes the 2-D `F(m,3)`
/// convolution correctly on random data; returns the maximum absolute error.
///
/// Used by tests to validate both the hard-coded and the generated matrices.
pub fn verify_matrices(bt: &Tensor<f32>, g: &Tensor<f32>, at: &Tensor<f32>, trials: usize) -> f32 {
    use rand::{Rng, SeedableRng};
    let alpha = bt.dims()[0];
    let m = at.dims()[0];
    let r = g.dims()[1];
    assert_eq!(alpha, m + r - 1);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12345);
    let b = crate::transform::transpose(bt);
    let gt = crate::transform::transpose(g);
    let a = crate::transform::transpose(at);
    let mut max_err = 0.0_f32;
    for _ in 0..trials {
        let d = Tensor::from_fn(&[alpha, alpha], |_| rng.gen_range(-1.0_f32..1.0));
        let f = Tensor::from_fn(&[r, r], |_| rng.gen_range(-1.0_f32..1.0));
        // V = B^T d B ; U = G f G^T ; Y = A^T (U ⊙ V) A, all via plain GEMMs so
        // that arbitrary tile sizes (not just the hard-coded ones) are accepted.
        let v = wino_tensor::gemm_f32(&wino_tensor::gemm_f32(bt, &d), &b);
        let u = wino_tensor::gemm_f32(&wino_tensor::gemm_f32(g, &f), &gt);
        let y = wino_tensor::gemm_f32(&wino_tensor::gemm_f32(at, &v.mul(&u)), &a);
        // Direct valid correlation.
        for oy in 0..m {
            for ox in 0..m {
                let mut acc = 0.0;
                for ky in 0..r {
                    for kx in 0..r {
                        acc += d.at2(oy + ky, ox + kx) * f.at2(ky, kx);
                    }
                }
                max_err = max_err.max((y.at2(oy, ox) - acc).abs());
            }
        }
    }
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{TileSize, WinogradMatrices};

    #[test]
    fn generated_f2_matrices_compute_correct_convolution() {
        let (bt, g, at) = cook_toom_matrices(2, 3, &[0.0, 1.0, -1.0]);
        assert_eq!(bt.dims(), &[4, 4]);
        assert_eq!(g.dims(), &[4, 3]);
        assert_eq!(at.dims(), &[2, 4]);
        let err = verify_matrices(&bt, &g, &at, 20);
        assert!(err < 1e-4, "generated F2 error {err}");
    }

    #[test]
    fn generated_f4_matrices_compute_correct_convolution() {
        let (bt, g, at) = cook_toom_matrices(4, 3, &[0.0, 1.0, -1.0, 0.5, -0.5]);
        let err = verify_matrices(&bt, &g, &at, 20);
        assert!(err < 1e-3, "generated F4 error {err}");
    }

    #[test]
    fn generated_f6_matrices_compute_correct_convolution() {
        let (bt, g, at) = cook_toom_matrices(6, 3, &[0.0, 1.0, -1.0, 2.0, -2.0, 0.5, -0.5]);
        let err = verify_matrices(&bt, &g, &at, 10);
        assert!(err < 1e-2, "generated F6 error {err}");
    }

    #[test]
    fn hardcoded_matrices_pass_the_same_verifier() {
        for tile in TileSize::all() {
            let m = WinogradMatrices::for_tile(tile);
            let err = verify_matrices(&m.bt, &m.g, &m.at, 20);
            assert!(err < 1e-2, "{tile}: hard-coded matrices error {err}");
        }
    }

    #[test]
    #[should_panic(expected = "finite points")]
    fn wrong_point_count_panics() {
        let _ = cook_toom_matrices(4, 3, &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn repeated_points_panic() {
        let _ = cook_toom_matrices(2, 3, &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn alternative_points_also_work_for_f4() {
        // Different point selection (as explored by Alam et al.) still yields a
        // valid algorithm, just with different numerical properties.
        let (bt, g, at) = cook_toom_matrices(4, 3, &[0.0, 1.0, -1.0, 2.0, -2.0]);
        let err = verify_matrices(&bt, &g, &at, 20);
        assert!(err < 1e-3, "alternative-point F4 error {err}");
    }
}
