//! Thread-local scratch for the tap-major Winograd pipelines.
//!
//! The tap-major forward passes ([`crate::winograd`], [`crate::int_winograd`])
//! stage every tile of a strip group in a `V[tap][c_in][tile]` layout and run
//! one GEMM per tap into an `M[tap][c_out][tile]` buffer. Those buffers are
//! sized per strip group (bounded by [`GROUP_SCRATCH_BUDGET`]) and are needed
//! again for the very next group and the very next conv node, so they are
//! parked per thread instead of being reallocated: on a single-CPU host the
//! parallel helpers run inline on the caller thread and every conv node of a
//! graph run reuses one warm allocation; on multi-core hosts each scoped
//! worker pays one allocation per `parallel_map` call at most.
//!
//! The fused epilogue (`crate::epilogue::EpilogueOps` — bias, residual add,
//! ReLU, and on the integer path the output requantization) adds **no**
//! scratch: the residual operand is streamed element-by-element from the
//! caller's live activation at scatter time, never gathered into a panel, so
//! [`tap_scratch_bytes`] is the same with or without an epilogue. The one
//! footprint change a fused residual makes is to the *output staging*: the
//! integer path's per-group strip buffers widen from `i8` codes to the `f32`
//! post-epilogue values (they become the final activation, so this is a
//! move of bytes from a dequantize pass into the kernel, not an addition).

use std::cell::RefCell;

/// Soft cap on the bytes of tap-major scratch (`V` plus `M`) per strip group,
/// chosen so both panels stay cache-resident while the per-tap GEMMs sweep
/// them and the GEMM `N` dimension (tiles per group) stays wide enough for
/// full microkernel blocks.
pub(crate) const GROUP_SCRATCH_BUDGET: usize = 2 << 20;

/// Grows `v` to at least `len` elements and returns the `len`-prefix.
fn grown<T: Copy + Default>(v: &mut Vec<T>, len: usize) -> &mut [T] {
    if v.len() < len {
        v.resize(len, T::default());
    }
    &mut v[..len]
}

/// The reusable tap-major buffers of one thread.
#[derive(Debug, Default)]
pub(crate) struct TapScratch {
    /// Float transformed-input panel `V[tap][c_in][tile]`.
    v_f: Vec<f32>,
    /// Float per-tap GEMM output panel `M[tap][c_out][tile]`.
    m_f: Vec<f32>,
    /// Float transform staging, SoA over tiles (`[t² rows][tile lanes]`).
    aux_a_f: Vec<f32>,
    /// Second float staging buffer (the two-stage congruence ping-pongs).
    aux_b_f: Vec<f32>,
    /// Integer requantized-code panel `V[tap][c_in][tile]`.
    v_i: Vec<i16>,
    /// Integer per-tap accumulator panel `M[tap][c_out][tile]`.
    m_i: Vec<i32>,
    /// Integer transform staging, SoA over tiles.
    aux_a_i: Vec<i32>,
    /// Second integer staging buffer.
    aux_b_i: Vec<i32>,
}

impl TapScratch {
    /// The float-path buffers, grown (never shrunk) to the requested element
    /// counts: the `V` panel, the `M` panel and the two SoA staging buffers
    /// (each `aux_len`).
    pub fn float_panels(
        &mut self,
        v_len: usize,
        m_len: usize,
        aux_len: usize,
    ) -> (&mut [f32], &mut [f32], &mut [f32], &mut [f32]) {
        (
            grown(&mut self.v_f, v_len),
            grown(&mut self.m_f, m_len),
            grown(&mut self.aux_a_f, aux_len),
            grown(&mut self.aux_b_f, aux_len),
        )
    }

    /// The integer-path buffers, grown (never shrunk) to the requested
    /// element counts: the `i16` code panel, the `i32` accumulator panel, two
    /// integer SoA staging buffers and two float staging buffers for the
    /// rescale + back-transformation epilogue.
    #[allow(clippy::type_complexity)]
    pub fn int_panels(
        &mut self,
        v_len: usize,
        m_len: usize,
        aux_len: usize,
    ) -> (
        &mut [i16],
        &mut [i32],
        &mut [i32],
        &mut [i32],
        &mut [f32],
        &mut [f32],
    ) {
        (
            grown(&mut self.v_i, v_len),
            grown(&mut self.m_i, m_len),
            grown(&mut self.aux_a_i, aux_len),
            grown(&mut self.aux_b_i, aux_len),
            grown(&mut self.aux_a_f, aux_len),
            grown(&mut self.aux_b_f, aux_len),
        )
    }
}

thread_local! {
    static TAP_SCRATCH: RefCell<TapScratch> = RefCell::new(TapScratch::default());
}

/// Runs `f` with this thread's tap-major scratch.
///
/// Not reentrant: `f` must not call back into a tap-major forward pass (the
/// GEMM kernels it invokes do not).
pub(crate) fn with_tap_scratch<R>(f: impl FnOnce(&mut TapScratch) -> R) -> R {
    TAP_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// How many strips (tile rows) one tap-major work item covers for a layer
/// with `tiles_w` tile columns and the given channel counts, such that the
/// `V` + `M` panels fit [`GROUP_SCRATCH_BUDGET`] (always at least one strip).
pub(crate) fn strip_group_len(tiles_w: usize, c_in: usize, c_out: usize, tt: usize) -> usize {
    let bytes_per_tile = (c_in + c_out) * tt * std::mem::size_of::<f32>();
    let max_tiles = (GROUP_SCRATCH_BUDGET / bytes_per_tile.max(1)).max(tiles_w);
    (max_tiles / tiles_w).max(1)
}

/// The peak tap-major scratch bytes (`V` + `M` panels, plus the per-thread
/// packed GEMM `B` panel) a forward pass of the given geometry uses per
/// worker thread, whichever of the float and integer pipelines is larger.
/// Thin layers that run the channel-laned formulation (single-image tiles
/// below `MIN_TAP_MAJOR_TILES`, `c_out` at least `CHANNEL_LANE_MIN_COUT`)
/// double the `M` panel — the GEMM's `[tile][co]` product and its SoA
/// transpose coexist — and their GEMM `N` dimension is `c_out`, so the `B`
/// panel widens accordingly. The integer path's `B` panel is sized through
/// [`wino_tensor::gemm_i16_b_panel_elems`], which accounts for the
/// K-grouped (paired-MAC) packing of the active kernel variant. This is what
/// `PreparedGraph::scratch_bytes` reports so deployments can size memory for
/// the executor beyond the activation arena.
pub fn tap_scratch_bytes(c_in: usize, c_out: usize, tile_t: usize, h: usize, w: usize) -> usize {
    let tt = tile_t * tile_t;
    let m = tile_t - 2;
    let tiles_w = w.div_ceil(m);
    let tiles_h = h.div_ceil(m);
    let group = strip_group_len(tiles_w, c_in, c_out, tt).min(tiles_h);
    let ntiles = group * tiles_w;
    let variant = wino_tensor::simd::active();
    // Mirrors the winograd module's thin-layer predicate at batch 1 (larger
    // batches only lower the footprint back to the tile-laned shape).
    let lane_channels = tiles_h * tiles_w < crate::winograd::MIN_TAP_MAJOR_TILES
        && c_out >= crate::winograd::CHANNEL_LANE_MIN_COUT;
    let m_panels = if lane_channels { 2 * c_out } else { c_out };
    let gemm_n = if lane_channels { c_out } else { ntiles };
    let gemm_m = if lane_channels { ntiles } else { c_out };
    let b_panel = wino_tensor::gemm_f32_b_panel_elems(variant, gemm_m, c_in, gemm_n);
    let float_bytes = ((c_in + m_panels) * tt * ntiles + b_panel) * std::mem::size_of::<f32>();
    // Integer pipeline: i16 `V` panel, i32 `M` panel, two i32 + two f32 SoA
    // staging rows, the staged emit lanes (f32 worst case), and the
    // K-grouped i16 GEMM `B` panel.
    let int_bytes = c_in * tt * ntiles * std::mem::size_of::<i16>()
        + c_out * tt * ntiles * std::mem::size_of::<i32>()
        + 2 * tt * ntiles * (std::mem::size_of::<i32>() + std::mem::size_of::<f32>())
        + m * m * ntiles * std::mem::size_of::<f32>()
        + wino_tensor::gemm_i16_b_panel_elems(variant, c_in, ntiles) * std::mem::size_of::<i16>();
    float_bytes.max(int_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_len_respects_budget_and_floor() {
        // Tiny layer: whole image fits the budget in one group.
        assert!(strip_group_len(2, 4, 4, 36) >= 1);
        // Huge channels: the floor of one strip still holds.
        assert_eq!(strip_group_len(64, 4096, 4096, 36), 1);
        // ResNet-34 layer2 (28×28, 128→128, F4): a group of several strips
        // stays under the budget.
        let g = strip_group_len(7, 128, 128, 36);
        assert!(g >= 2, "expected multi-strip groups, got {g}");
        assert!((128 + 128) * 36 * g * 7 * 4 <= GROUP_SCRATCH_BUDGET);
    }

    #[test]
    fn scratch_bytes_are_positive_and_budget_bounded() {
        let b = tap_scratch_bytes(128, 128, 6, 28, 28);
        assert!(b > 0);
        // One tile row can exceed the soft budget only on degenerate
        // geometries; this one must respect it.
        assert!(b <= GROUP_SCRATCH_BUDGET, "{b}");
    }

    #[test]
    fn panels_grow_and_are_reused() {
        let mut s = TapScratch::default();
        {
            let (v, m, a, b) = s.float_panels(16, 8, 4);
            assert_eq!((v.len(), m.len(), a.len(), b.len()), (16, 8, 4, 4));
            v[0] = 1.0;
        }
        let cap = s.v_f.capacity();
        let (v, _, _, _) = s.float_panels(8, 4, 2);
        assert_eq!(v.len(), 8);
        assert_eq!(s.v_f.capacity(), cap, "shrink must not reallocate");
        let (vi, mi, ai, bi, af, bf) = s.int_panels(10, 10, 6);
        assert_eq!(
            (vi.len(), mi.len(), ai.len(), bi.len(), af.len(), bf.len()),
            (10, 10, 6, 6, 6, 6)
        );
    }
}
