//! The unified convolution execution engine.
//!
//! The paper's accelerator treats kernel selection as a compiler decision:
//! every convolution layer is mapped to im2col + MatMul, Winograd F(2×2, 3×3)
//! or Winograd F(4×4, 3×3), and different layers of one network routinely use
//! different kernels (Table VII). This module gives the *numeric* side of the
//! workspace the same structure the cycle simulator already had:
//!
//! * [`ConvBackend`] — one shared signature over NCHW tensors that every
//!   convolution path implements ([`backends`]): direct, im2col + GEMM,
//!   float Winograd F2/F4 and the integer tap-wise Winograd pipeline;
//! * [`Planner`] — per-layer kernel selection over a [`wino_nets::Network`],
//!   sharing the [`wino_nets::Kernel`] taxonomy and eligibility rules with
//!   `accel_sim` ([`planner`]);
//! * [`NetworkExecutor`] — runs whole layer inventories through the planned
//!   backends with real tensors ([`executor`]).
//!
//! # Adding a backend
//!
//! Implement [`ConvBackend`] for your type (see `backends.rs` for the
//! patterns), report the accelerator [`Kernel`] it realises from
//! [`ConvBackend::kernel`] (or `None` for pure reference paths), and register
//! it with [`Engine::push`]. Dispatch, planning and the executor pick it up
//! without further changes; the `engine_dispatch` integration test will
//! cross-check it against the direct reference automatically if added to the
//! engine there.

pub mod backends;
pub mod executor;
pub mod graph_exec;
pub mod planner;
pub mod running;

pub use backends::{DirectBackend, Im2colGemmBackend, IntWinogradTapwiseBackend, WinogradBackend};
pub use executor::{
    ExecutorOptions, LayerExecution, NetworkExecution, NetworkExecutor, SynthCache, SynthStats,
};
pub use graph_exec::{
    ActivationArena, ArenaStats, GraphExecution, GraphExecutor, GraphRunOptions, NodeExecution,
    PreparedGraph,
};
pub use planner::{
    Activation, EpilogueFusion, EpiloguePlan, ExecutionPlan, FusionClasses, LayerPlan, Planner,
};
pub use running::{CalibrationPolicy, CalibrationState, RunningCalibration};

use crate::epilogue::EpilogueOps;
use wino_nets::Kernel;
use wino_tensor::{ConvParams, Tensor};

/// One convolution path behind the engine's shared contract.
///
/// Inputs are NCHW activations and OIHW weights (square kernels); the output
/// is the NCHW feature map in FP32. Quantized backends consume and produce
/// FP32 at the boundary and quantize internally, which is exactly how the
/// accelerator's int8 datapath presents itself to the network graph.
pub trait ConvBackend: Send + Sync {
    /// Short stable name for reports and benchmarks.
    fn name(&self) -> &'static str;

    /// The accelerator kernel this backend realises, or `None` for pure
    /// software reference paths that the planner never selects.
    fn kernel(&self) -> Option<Kernel>;

    /// Whether this backend can execute a convolution with `params`.
    fn supports(&self, params: ConvParams) -> bool;

    /// Runs the convolution.
    ///
    /// # Panics
    ///
    /// Panics if the tensor shapes are inconsistent with `params`; callers
    /// should check [`ConvBackend::supports`] first (the [`Engine`] does).
    fn conv2d(
        &self,
        x: &Tensor<f32>,
        w: &Tensor<f32>,
        bias: Option<&Tensor<f32>>,
        params: ConvParams,
    ) -> Tensor<f32>;

    /// Runs the convolution with a fused [`EpilogueOps`] tail — bias,
    /// optional residual add and pre-/post-residual ReLU — applied before
    /// the output is returned.
    ///
    /// The default implementation runs [`ConvBackend::conv2d`] (handing it
    /// the bias) and then applies the remaining tail as separate passes via
    /// [`crate::epilogue::apply_epilogue`]; backends with an in-register
    /// epilogue stage (the Winograd paths) override this to fuse the whole
    /// tail into their output transformation. Both routes compute the same
    /// elementwise expression in the same order, so an override must stay —
    /// and the built-in ones are — bitwise identical to the default.
    ///
    /// # Panics
    ///
    /// Panics if tensor shapes are inconsistent with `params` or the
    /// epilogue operands (residual shape, bias length) disagree with the
    /// output geometry.
    fn conv2d_epilogue(
        &self,
        x: &Tensor<f32>,
        w: &Tensor<f32>,
        params: ConvParams,
        ops: &EpilogueOps,
    ) -> Tensor<f32> {
        let mut y = self.conv2d(x, w, ops.bias, params);
        crate::epilogue::apply_epilogue(&mut y, &ops.without_bias());
        y
    }
}

/// A registry of backends with kernel-keyed dispatch.
///
/// Backends are searched in registration order; the first one whose
/// [`ConvBackend::kernel`] matches and which supports the requested geometry
/// wins, so a quantized backend registered before the float one shadows it.
pub struct Engine {
    backends: Vec<Box<dyn ConvBackend>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field(
                "backends",
                &self.backends.iter().map(|b| b.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Engine {
    /// An engine with no backends; populate it with [`Engine::push`].
    pub fn empty() -> Self {
        Self {
            backends: Vec::new(),
        }
    }

    /// The default FP32 engine: direct reference, im2col + GEMM, Winograd F2
    /// and Winograd F4.
    pub fn with_default_backends() -> Self {
        let mut e = Self::empty();
        e.push(Box::new(DirectBackend));
        e.push(Box::new(Im2colGemmBackend));
        e.push(Box::new(WinogradBackend::f2()));
        e.push(Box::new(WinogradBackend::f4()));
        e
    }

    /// An engine whose Winograd kernel of `cfg.tile` (F2 or F4) runs the
    /// integer tap-wise pipeline (the paper's preferred configuration)
    /// instead of FP32; the other tile keeps its float backend.
    pub fn quantized(cfg: crate::int_winograd::WinogradQuantConfig) -> Self {
        let mut e = Self::empty();
        e.push(Box::new(DirectBackend));
        e.push(Box::new(Im2colGemmBackend));
        // Registered before both float Winograd backends so it shadows the
        // float path of whichever kernel it realises.
        e.push(Box::new(IntWinogradTapwiseBackend::new(cfg)));
        e.push(Box::new(WinogradBackend::f2()));
        e.push(Box::new(WinogradBackend::f4()));
        e
    }

    /// Registers a backend (later lookups prefer earlier registrations).
    pub fn push(&mut self, backend: Box<dyn ConvBackend>) {
        self.backends.push(backend);
    }

    /// All registered backends.
    pub fn backends(&self) -> &[Box<dyn ConvBackend>] {
        &self.backends
    }

    /// The first backend realising `kernel` that supports `params`.
    pub fn backend_for(&self, kernel: Kernel, params: ConvParams) -> Option<&dyn ConvBackend> {
        self.backends
            .iter()
            .find(|b| b.kernel() == Some(kernel) && b.supports(params))
            .map(|b| b.as_ref())
    }

    /// Executes a convolution with the backend realising `kernel`, falling
    /// back to the im2col kernel when the requested one cannot handle the
    /// geometry (e.g. a Winograd kernel asked to run a strided layer).
    ///
    /// # Panics
    ///
    /// Panics if not even the fallback kernel is registered.
    pub fn execute(
        &self,
        kernel: Kernel,
        x: &Tensor<f32>,
        w: &Tensor<f32>,
        bias: Option<&Tensor<f32>>,
        params: ConvParams,
    ) -> Tensor<f32> {
        let backend = self
            .backend_for(kernel, params)
            .or_else(|| self.backend_for(Kernel::Im2col, params))
            .expect("engine has no backend able to execute this layer");
        backend.conv2d(x, w, bias, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_tensor::normal;

    #[test]
    fn default_engine_lists_every_kernel() {
        let e = Engine::with_default_backends();
        let p = ConvParams::same_3x3();
        for k in Kernel::all() {
            assert!(e.backend_for(k, p).is_some(), "missing backend for {k}");
        }
        assert_eq!(e.backends().len(), 4);
    }

    #[test]
    fn strided_request_falls_back_to_im2col() {
        let e = Engine::with_default_backends();
        let p = ConvParams::new(3, 2, 1);
        assert!(e.backend_for(Kernel::WinogradF4, p).is_none());
        let x = normal(&[1, 2, 8, 8], 0.0, 1.0, 1);
        let w = normal(&[3, 2, 3, 3], 0.0, 0.5, 2);
        let y = e.execute(Kernel::WinogradF4, &x, &w, None, p);
        assert_eq!(y.dims(), &[1, 3, 4, 4]);
    }

    #[test]
    fn quantized_engine_shadows_float_f4() {
        let e = Engine::quantized(crate::int_winograd::WinogradQuantConfig::default());
        let b = e
            .backend_for(Kernel::WinogradF4, ConvParams::same_3x3())
            .unwrap();
        assert_eq!(b.name(), "int-winograd-tapwise");
    }
}
