//! Whole-network execution through the engine.
//!
//! The layer inventories in `wino_nets` describe geometry only; the executor
//! materialises real tensors for every layer (seeded Kaiming weights, Gaussian
//! activations at the layer's input resolution), runs each one through the
//! backend the [`Planner`] chose, and reports per-layer kernels, shapes and
//! wall-clock times. Layers are executed independently rather than chained:
//! the inventories contain branches (residual adds, FPN merges) that a flat
//! layer list cannot express, and independent execution keeps every layer's
//! input at its published shape.

use crate::engine::planner::{ExecutionPlan, Planner};
use crate::engine::Engine;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use wino_nets::{ConvLayer, Kernel, Network};
use wino_tensor::{kaiming_normal, normal, Tensor};

/// A shape-keyed, byte-bounded cache of synthesized tensors.
///
/// The executors run layers and graphs on synthesized activations and
/// weights; benchmark inventories repeat the same shapes over and over
/// (ResNet-34 alone instantiates six identical 56×56/64-channel layers), and
/// re-running the RNG for every invocation dominated `run_layer` on small
/// layers. The cache keys on (distribution, dims, seed) and hands out cheap
/// [`Arc`] clones; both [`NetworkExecutor::run_layer`] and the graph
/// executor's prepare step draw from it.
///
/// Insertion evicts the oldest entries once the byte budget (default
/// [`SynthCache::DEFAULT_BUDGET`]) is exceeded, so a long-lived executor
/// sweeping many graphs or seeds cannot grow without bound; eviction only
/// drops the cache's own reference — tensors held by live prepared graphs
/// stay alive through their `Arc`s.
#[derive(Debug)]
pub struct SynthCache {
    inner: Mutex<SynthInner>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// Cache key: (is-Kaiming, dims, seed).
type SynthKey = (bool, Vec<usize>, u64);

/// Point-in-time counters of a [`SynthCache`].
///
/// A public snapshot so the serving stats and the benches can report cache
/// effectiveness without reaching into executor internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthStats {
    /// Requests served from the cache.
    pub hits: usize,
    /// Requests that ran the synthesizer.
    pub misses: usize,
    /// Tensors currently cached.
    pub entries: usize,
    /// Bytes of tensor data currently cached.
    pub bytes: usize,
}

impl SynthStats {
    /// Hits as a fraction of all requests (0 when nothing was requested).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct SynthInner {
    map: HashMap<SynthKey, Arc<Tensor<f32>>>,
    order: VecDeque<SynthKey>,
    bytes: usize,
    budget: usize,
}

impl Default for SynthCache {
    fn default() -> Self {
        Self::with_budget(Self::DEFAULT_BUDGET)
    }
}

impl SynthCache {
    /// Default byte budget: enough for a couple of full-scale benchmark
    /// graphs' weights plus their inputs.
    pub const DEFAULT_BUDGET: usize = 512 << 20;

    /// An empty cache with the default byte budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `budget` bytes of tensor data.
    pub fn with_budget(budget: usize) -> Self {
        Self {
            inner: Mutex::new(SynthInner {
                budget,
                ..SynthInner::default()
            }),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// A standard-normal activation tensor of `dims` for `seed`.
    pub fn normal(&self, dims: &[usize], seed: u64) -> Arc<Tensor<f32>> {
        self.get_or_insert(false, dims, seed, || normal(dims, 0.0, 1.0, seed))
    }

    /// A Kaiming-normal weight tensor of `dims` for `seed`.
    pub fn kaiming(&self, dims: &[usize], seed: u64) -> Arc<Tensor<f32>> {
        self.get_or_insert(true, dims, seed, || kaiming_normal(dims, seed))
    }

    fn get_or_insert(
        &self,
        kaiming: bool,
        dims: &[usize],
        seed: u64,
        make: impl FnOnce() -> Tensor<f32>,
    ) -> Arc<Tensor<f32>> {
        let key = (kaiming, dims.to_vec(), seed);
        let mut inner = self.inner.lock().expect("synth cache poisoned");
        if let Some(t) = inner.map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(t);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let t = Arc::new(make());
        inner.bytes += t.len() * std::mem::size_of::<f32>();
        inner.map.insert(key.clone(), Arc::clone(&t));
        inner.order.push_back(key);
        // Evict oldest-first down to the budget (the new entry is kept even
        // if it alone exceeds it — the caller needs the tensor either way).
        while inner.bytes > inner.budget && inner.order.len() > 1 {
            let victim = inner.order.pop_front().expect("non-empty order");
            if let Some(old) = inner.map.remove(&victim) {
                inner.bytes -= old.len() * std::mem::size_of::<f32>();
            }
        }
        t
    }

    /// A point-in-time snapshot of the cache counters.
    pub fn stats(&self) -> SynthStats {
        let inner = self.inner.lock().expect("synth cache poisoned");
        SynthStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (synthesis runs) so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached tensors.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("synth cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of tensor data currently cached.
    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("synth cache poisoned").bytes
    }

    /// Drops every cached tensor (the counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("synth cache poisoned");
        inner.map.clear();
        inner.order.clear();
        inner.bytes = 0;
    }
}

/// Execution options: batch size, shape caps for test-speed control, seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorOptions {
    /// Batch size of the synthesized activations.
    pub batch: usize,
    /// Channel counts are capped to this value (`usize::MAX` = no cap).
    pub max_channels: usize,
    /// Spatial output resolution is capped to this value.
    pub max_hw: usize,
    /// Base seed of the synthesized tensors.
    pub seed: u64,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        Self {
            batch: 1,
            max_channels: usize::MAX,
            max_hw: usize::MAX,
            seed: 0,
        }
    }
}

impl ExecutorOptions {
    /// A configuration capped for fast functional runs (tests, smoke checks).
    pub fn smoke() -> Self {
        Self {
            batch: 1,
            max_channels: 16,
            max_hw: 16,
            seed: 0,
        }
    }
}

/// The outcome of executing one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerExecution {
    /// Layer name from the inventory.
    pub name: String,
    /// Kernel the planner selected.
    pub kernel: Kernel,
    /// Name of the backend that actually ran (fallbacks included).
    pub backend: &'static str,
    /// NCHW dimensions of the produced output.
    pub output_dims: Vec<usize>,
    /// Wall-clock seconds of the backend call.
    pub seconds: f64,
    /// Mean of the output feature map (cheap integrity checksum).
    pub checksum: f32,
}

/// The outcome of executing a whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkExecution {
    /// Network name.
    pub network: String,
    /// The plan that was executed.
    pub plan: ExecutionPlan,
    /// Per-layer outcomes, in inventory order.
    pub layers: Vec<LayerExecution>,
    /// Total wall-clock seconds across all layers.
    pub total_seconds: f64,
}

impl NetworkExecution {
    /// How many layers ran with each kernel.
    pub fn kernel_histogram(&self) -> [(Kernel, usize); 3] {
        self.plan.kernel_histogram()
    }

    /// Seconds spent in layers of the given kernel.
    pub fn seconds_for(&self, kernel: Kernel) -> f64 {
        self.layers
            .iter()
            .filter(|l| l.kernel == kernel)
            .map(|l| l.seconds)
            .sum()
    }
}

/// Runs whole layer inventories through planned backends with real tensors.
#[derive(Debug)]
pub struct NetworkExecutor {
    engine: Engine,
    planner: Planner,
    synth: SynthCache,
}

impl NetworkExecutor {
    /// An executor over the given engine and planner.
    pub fn new(engine: Engine, planner: Planner) -> Self {
        Self {
            engine,
            planner,
            synth: SynthCache::new(),
        }
    }

    /// The default FP32 executor (all kernels available).
    pub fn with_defaults() -> Self {
        Self::new(Engine::with_default_backends(), Planner::default())
    }

    /// The engine backing this executor.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The planner backing this executor.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The tensor-synthesis cache backing this executor.
    pub fn synth(&self) -> &SynthCache {
        &self.synth
    }

    /// Executes one layer with the given kernel on synthesized tensors.
    pub fn run_layer(
        &self,
        layer: &ConvLayer,
        kernel: Kernel,
        opts: &ExecutorOptions,
    ) -> LayerExecution {
        let capped = capped_layer(layer, opts);
        let params = capped.params();
        let (h_in, w_in) = capped.input_hw();
        let x = self.synth.normal(
            &[opts.batch, capped.c_in, h_in, w_in],
            opts.seed.wrapping_mul(31).wrapping_add(1),
        );
        let w = self.synth.kaiming(
            &[capped.c_out, capped.c_in, capped.kernel, capped.kernel],
            opts.seed.wrapping_mul(31).wrapping_add(2),
        );
        let backend = self
            .engine
            .backend_for(kernel, params)
            .or_else(|| self.engine.backend_for(Kernel::Im2col, params))
            .expect("engine has no backend for this layer");
        let start = Instant::now();
        let y = backend.conv2d(&x, &w, None, params);
        let seconds = start.elapsed().as_secs_f64();
        LayerExecution {
            name: layer.name.clone(),
            kernel,
            backend: backend.name(),
            output_dims: y.dims().to_vec(),
            seconds,
            checksum: y.mean(),
        }
    }

    /// Plans and executes every layer of a network.
    pub fn run(&self, network: &Network, opts: &ExecutorOptions) -> NetworkExecution {
        let plan = self.planner.plan(network);
        let mut layers = Vec::with_capacity(plan.layers.len());
        let mut total = 0.0;
        for (layer, lp) in network.layers.iter().zip(plan.layers.iter()) {
            let mut exec = self.run_layer(layer, lp.kernel, opts);
            // The plan names the layer; keep them aligned even if a backend
            // fallback changed the executing path.
            exec.name.clone_from(&lp.name);
            total += exec.seconds;
            layers.push(exec);
        }
        NetworkExecution {
            network: network.name.clone(),
            plan,
            layers,
            total_seconds: total,
        }
    }
}

/// Applies the option caps to one layer descriptor.
fn capped_layer(layer: &ConvLayer, opts: &ExecutorOptions) -> ConvLayer {
    let mut l = layer.clone();
    l.c_in = l.c_in.min(opts.max_channels).max(1);
    l.c_out = l.c_out.min(opts.max_channels).max(1);
    l.h_out = l.h_out.min(opts.max_hw).max(1);
    l.w_out = l.w_out.min(opts.max_hw).max(1);
    l
}

/// Convenience: checks that an executed output dims match the capped layer
/// geometry (used by tests and examples).
pub fn expected_output_dims(layer: &ConvLayer, opts: &ExecutorOptions) -> Vec<usize> {
    let capped = capped_layer(layer, opts);
    let params = capped.params();
    let (h_in, w_in) = capped.input_hw();
    let (h_out, w_out) = params.output_hw(h_in, w_in);
    vec![opts.batch, capped.c_out, h_out, w_out]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_nets::{resnet20, unet, vgg_nagadomi, LayerKind};

    #[test]
    fn runs_every_layer_of_small_inventories() {
        let exec = NetworkExecutor::with_defaults();
        let opts = ExecutorOptions::smoke();
        for net in [resnet20(), vgg_nagadomi()] {
            let run = exec.run(&net, &opts);
            assert_eq!(run.layers.len(), net.layers.len());
            for (layer, le) in net.layers.iter().zip(run.layers.iter()) {
                assert_eq!(
                    le.output_dims,
                    expected_output_dims(layer, &opts),
                    "layer {} produced the wrong shape",
                    le.name
                );
                assert!(le.checksum.is_finite());
            }
            assert!(run.total_seconds >= 0.0);
        }
    }

    #[test]
    fn eligible_layers_run_winograd_backends() {
        let exec = NetworkExecutor::with_defaults();
        let run = exec.run(&unet(), &ExecutorOptions::smoke());
        for (layer, le) in unet().layers.iter().zip(run.layers.iter()) {
            match layer.kind() {
                LayerKind::WinogradEligible => {
                    assert!(
                        le.backend.starts_with("winograd"),
                        "eligible layer {} ran {}",
                        le.name,
                        le.backend
                    );
                }
                LayerKind::Standard => assert_eq!(le.backend, "im2col-gemm"),
            }
        }
        let hist = run.kernel_histogram();
        assert!(hist[0].1 > 0 && hist[2].1 > 0);
    }

    #[test]
    fn repeated_shapes_reuse_synthesized_tensors() {
        let exec = NetworkExecutor::with_defaults();
        let layer = wino_nets::ConvLayer::conv3x3("t", 8, 8, 12);
        let opts = ExecutorOptions::smoke();
        let first = exec.run_layer(&layer, Kernel::WinogradF2, &opts);
        let misses = exec.synth().misses();
        assert_eq!(misses, 2, "first run synthesizes input + weights");
        let second = exec.run_layer(&layer, Kernel::WinogradF2, &opts);
        assert_eq!(exec.synth().misses(), misses, "second run must hit");
        assert_eq!(exec.synth().hits(), 2);
        assert_eq!(first.checksum, second.checksum);
    }

    #[test]
    fn synth_cache_evicts_oldest_beyond_its_budget() {
        // Budget fits two 4-element tensors (16 bytes each) but not three.
        let cache = SynthCache::with_budget(32);
        let a = cache.normal(&[4], 1);
        let _b = cache.normal(&[4], 2);
        let _c = cache.normal(&[4], 3);
        assert_eq!(cache.len(), 2, "oldest entry must be evicted");
        assert!(cache.bytes() <= 32);
        // The evicted tensor is regenerated identically on re-request.
        let a2 = cache.normal(&[4], 1);
        assert_eq!(*a, *a2);
    }

    #[test]
    fn run_layer_respects_requested_kernel() {
        let exec = NetworkExecutor::with_defaults();
        let layer = wino_nets::ConvLayer::conv3x3("t", 8, 8, 12);
        let opts = ExecutorOptions::smoke();
        let f2 = exec.run_layer(&layer, Kernel::WinogradF2, &opts);
        assert_eq!(f2.backend, "winograd-f2");
        let strided = wino_nets::ConvLayer::new("s", 8, 8, 6, 6, 3, 2);
        let fb = exec.run_layer(&strided, Kernel::WinogradF4, &opts);
        assert_eq!(fb.backend, "im2col-gemm", "strided layer must fall back");
    }
}
