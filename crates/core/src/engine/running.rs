//! Running-statistics calibration of the integer graph pipeline.
//!
//! The first-batch-only calibration of [`super::GraphExecutor`] freezes every
//! integer node's quantizers from whatever activations the very first run
//! happens to carry — fine for a curated warmup batch, unsafe for
//! heterogeneous live traffic whose activation ranges drift beyond it (the
//! paper itself calibrates `x_max` with "a running average of the maximum
//! values"; §III). This module lifts the limitation: a
//! [`RunningCalibration`] tracks, per integer conv node, an exponential
//! running average of
//!
//! * the spatial input range (`|x|_max` — the input quantizer),
//! * the per-tap maxima of the Winograd-transformed input (`Bᵀ·x·B` — the
//!   tap-wise `S_B` scales), and
//! * the output-range estimate (the output quantizer),
//!
//! folded in once per observed batch, exactly the per-iteration semantics of
//! [`crate::calibration::MaxCalibrator`]. While warming, observed graphs run
//! their integer nodes as direct FP32 convolutions (so replies stay
//! rangelimit-safe and nothing quantizes against half-converged scales); the
//! Winograd-domain weight tap maxima are peak-tracked once, since weights do
//! not drift.
//!
//! **Freezing** happens when the [`CalibrationPolicy`] is satisfied: at least
//! `min_batches` observed *and* no tracked range moved by more than
//! `stability_tol` (relative) in the last batch — or unconditionally at
//! `max_batches`, so a pathologically drifting client cannot keep a model
//! uncalibrated forever. At that point
//! [`super::GraphExecutor::observe_with`] builds each node's
//! [`crate::IntWinogradConv`] from the converged ranges, installs it into the
//! prepared graph, and the **recalibration guard** engages: the state is
//! immutable from then on, every later run takes the normal cached integer
//! path, and served outputs are bitwise reproducible.

use crate::calibration::MaxCalibrator;
use crate::int_winograd::WinogradQuantConfig;
use crate::matrices::WinogradMatrices;
use crate::transform::{extract_input_tile, input_transform, weight_transform, TileGrid};
use std::sync::Arc;
use std::sync::Mutex;
use wino_tensor::Tensor;

/// When running-statistics calibration freezes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPolicy {
    /// EMA weight of the newest batch's maxima (the paper-style running
    /// average uses small momenta; serving warmups converge faster with
    /// moderate ones).
    pub momentum: f32,
    /// Never freeze before this many observed batches.
    pub min_batches: usize,
    /// Freeze once every tracked range moved less than this fraction of
    /// itself in the last observed batch.
    pub stability_tol: f32,
    /// Force-freeze after this many batches even if ranges still drift, so a
    /// model cannot stay uncalibrated indefinitely.
    pub max_batches: usize,
}

impl Default for CalibrationPolicy {
    fn default() -> Self {
        Self {
            momentum: 0.2,
            min_batches: 8,
            stability_tol: 0.02,
            max_batches: 64,
        }
    }
}

impl CalibrationPolicy {
    /// A policy tuned for tests and smoke runs: freeze after `min_batches`
    /// stable batches with a loose 10% stability criterion.
    pub fn quick(min_batches: usize) -> Self {
        Self {
            momentum: 0.3,
            min_batches,
            stability_tol: 0.1,
            max_batches: min_batches * 8,
        }
    }
}

/// Where a model's calibration lifecycle stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationState {
    /// Nothing to calibrate: the graph has no integer nodes, or its integer
    /// state was already frozen (first-batch warmup) when the calibrator was
    /// created.
    Static,
    /// Observing batches; integer nodes run as direct FP32 and ranges are
    /// still moving.
    Warming {
        /// Batches observed so far.
        batches: usize,
    },
    /// Ranges converged and the integer state is installed; runs are bitwise
    /// reproducible from here on.
    Frozen {
        /// Batches that were observed before the freeze.
        batches: usize,
    },
    /// The freeze was attempted and failed (integer prepare errored, or a
    /// fault plan injected a failure). The model is pinned to the exact-FP32
    /// observe path: runs stay correct and bitwise reproducible, trackers are
    /// inert, and no further freeze will ever be attempted.
    Degraded {
        /// Batches that were observed before the failed freeze.
        batches: usize,
    },
}

impl CalibrationState {
    /// Whether observation is over (nothing will ever mutate again).
    pub fn is_frozen(&self) -> bool {
        !matches!(self, CalibrationState::Warming { .. })
    }

    /// Whether the freeze failed and the model is pinned to FP32.
    pub fn is_degraded(&self) -> bool {
        matches!(self, CalibrationState::Degraded { .. })
    }

    /// Compact human-readable label (`static`, `warming(3)`, `frozen@7`,
    /// `degraded@7`) for stats tables.
    pub fn label(&self) -> String {
        match self {
            CalibrationState::Static => "static".to_string(),
            CalibrationState::Warming { batches } => format!("warming({batches})"),
            CalibrationState::Frozen { batches } => format!("frozen@{batches}"),
            CalibrationState::Degraded { batches } => format!("degraded@{batches}"),
        }
    }
}

/// Per-integer-node running trackers.
#[derive(Debug)]
pub(crate) struct NodeTrackers {
    /// Graph node id of the integer conv.
    pub(crate) node: usize,
    /// The node's FP32 weights (shared with the prepared graph).
    pub(crate) weights: Arc<Tensor<f32>>,
    /// EMA of the spatial input range per batch.
    input_max: MaxCalibrator,
    /// EMA per Winograd tap of the transformed-input batch maxima.
    input_taps: Vec<MaxCalibrator>,
    /// EMA of the output-range estimate per batch.
    output_max: MaxCalibrator,
    /// Peak per-tap maxima of the transformed weights (computed once).
    weight_taps: Option<Tensor<f32>>,
}

/// The converged ranges of one node, handed to the freeze step.
#[derive(Debug, Clone)]
pub(crate) struct FrozenRanges {
    pub(crate) node: usize,
    pub(crate) weights: Arc<Tensor<f32>>,
    pub(crate) input_max: f32,
    pub(crate) input_taps: Tensor<f32>,
    pub(crate) weight_taps: Tensor<f32>,
    pub(crate) output_max: f32,
}

#[derive(Debug)]
struct Inner {
    batches: usize,
    frozen_at: Option<usize>,
    /// Set once the freeze decision fired, so exactly one caller installs.
    freeze_claimed: bool,
    /// Set when the freeze attempt failed; the model stays on the FP32
    /// observe path forever and the trackers go inert.
    degraded: bool,
    nodes: Vec<NodeTrackers>,
    /// Flat snapshot of every tracked range after the previous batch, for
    /// the stability criterion.
    last_ranges: Option<Vec<f32>>,
    /// Largest relative range movement observed in the last batch.
    last_drift: f32,
}

/// Running-statistics calibration state for one [`super::PreparedGraph`].
///
/// Create it with [`super::GraphExecutor::running_calibration`], feed batches
/// through [`super::GraphExecutor::observe_with`], and read the lifecycle
/// from [`RunningCalibration::state`]. Once frozen it is inert: further
/// `observe_with` calls are plain runs (the recalibration guard).
#[derive(Debug)]
pub struct RunningCalibration {
    policy: CalibrationPolicy,
    cfg: Option<WinogradQuantConfig>,
    inner: Mutex<Inner>,
}

impl RunningCalibration {
    /// Built by the executor: one tracker per *uncalibrated* integer node.
    /// With no nodes (float graph, or already-warmed state) the calibrator is
    /// born [`CalibrationState::Static`].
    pub(crate) fn from_nodes(
        policy: CalibrationPolicy,
        cfg: Option<WinogradQuantConfig>,
        nodes: Vec<(usize, Arc<Tensor<f32>>)>,
    ) -> Self {
        assert!(
            policy.momentum > 0.0 && policy.momentum <= 1.0,
            "momentum must be in (0, 1]"
        );
        assert!(
            policy.max_batches >= policy.min_batches.max(1),
            "max_batches must be >= min_batches and >= 1"
        );
        let t = cfg.map_or(0, |c| WinogradMatrices::for_tile(c.tile).input_tile());
        let trackers: Vec<NodeTrackers> = nodes
            .into_iter()
            .map(|(node, weights)| NodeTrackers {
                node,
                weights,
                input_max: MaxCalibrator::new(policy.momentum),
                input_taps: vec![MaxCalibrator::new(policy.momentum); t * t],
                output_max: MaxCalibrator::new(policy.momentum),
                weight_taps: None,
            })
            .collect();
        let is_static = trackers.is_empty() || cfg.is_none();
        Self {
            policy,
            cfg,
            inner: Mutex::new(Inner {
                batches: 0,
                frozen_at: is_static.then_some(0),
                freeze_claimed: is_static,
                degraded: false,
                nodes: trackers,
                last_ranges: None,
                last_drift: f32::INFINITY,
            }),
        }
    }

    /// The freeze policy.
    pub fn policy(&self) -> CalibrationPolicy {
        self.policy
    }

    /// The lifecycle position: static, warming or frozen.
    pub fn state(&self) -> CalibrationState {
        let g = self.inner.lock().expect("calibration poisoned");
        if g.degraded {
            return CalibrationState::Degraded { batches: g.batches };
        }
        match g.frozen_at {
            Some(0) if g.nodes.is_empty() || self.cfg.is_none() => CalibrationState::Static,
            Some(b) => CalibrationState::Frozen { batches: b },
            None => CalibrationState::Warming { batches: g.batches },
        }
    }

    /// Whether integer nodes should still run the FP32 observation path.
    pub(crate) fn observing(&self) -> bool {
        self.inner
            .lock()
            .expect("calibration poisoned")
            .frozen_at
            .is_none()
    }

    /// The largest relative range movement seen in the last observed batch
    /// (`inf` before the second batch — nothing to compare yet).
    pub fn last_drift(&self) -> f32 {
        self.inner.lock().expect("calibration poisoned").last_drift
    }

    /// The EMA'd spatial input range of the integer node with the given
    /// graph id, if it is tracked and has observed at least one batch.
    /// Exposed so tests (and capacity dashboards) can see what the frozen
    /// quantizers were actually built from.
    pub fn input_max_for(&self, node: usize) -> Option<f32> {
        let g = self.inner.lock().expect("calibration poisoned");
        g.nodes
            .iter()
            .find(|n| n.node == node)
            .and_then(|n| n.input_max.max())
    }

    /// Graph node ids under calibration.
    pub fn tracked_nodes(&self) -> Vec<usize> {
        let g = self.inner.lock().expect("calibration poisoned");
        g.nodes.iter().map(|n| n.node).collect()
    }

    /// Folds one node's activations into its running trackers (called from
    /// the executor's observation run; a no-op for untracked nodes).
    pub(crate) fn observe_node(&self, node: usize, x: &Tensor<f32>) {
        let cfg = match self.cfg {
            Some(c) => c,
            None => return,
        };
        let mats = WinogradMatrices::for_tile(cfg.tile);
        let t = mats.input_tile();
        let mut g = self.inner.lock().expect("calibration poisoned");
        if g.frozen_at.is_some() || g.degraded {
            return; // recalibration guard: frozen state never moves again
        }
        let Some(n) = g.nodes.iter_mut().find(|n| n.node == node) else {
            return;
        };
        // Weight tap maxima once: weights are immutable across batches.
        if n.weight_taps.is_none() {
            let w = &n.weights;
            let (c_out, c_in) = (w.dims()[0], w.dims()[1]);
            let mut maxima = vec![0.0_f32; t * t];
            let mut k = Tensor::<f32>::zeros(&[3, 3]);
            for co in 0..c_out {
                for ci in 0..c_in {
                    for ky in 0..3 {
                        for kx in 0..3 {
                            k.set2(ky, kx, w.at4(co, ci, ky, kx));
                        }
                    }
                    let u = weight_transform(&k, &mats);
                    for (m, &v) in maxima.iter_mut().zip(u.as_slice()) {
                        *m = m.max(v.abs());
                    }
                }
            }
            n.weight_taps = Some(Tensor::from_vec(maxima, &[t, t]).expect("tap matrix"));
        }
        // Batch maxima per tap of the transformed input, then one EMA fold —
        // the per-iteration running-average semantics of the paper.
        let grid = TileGrid::new(x.dims()[2], x.dims()[3], mats.output_tile(), 1);
        let mut batch_taps = vec![0.0_f32; t * t];
        for img in 0..x.dims()[0] {
            for c in 0..x.dims()[1] {
                for ty in 0..grid.tiles_h {
                    for tx in 0..grid.tiles_w {
                        let tile = extract_input_tile(x, img, c, ty, tx, &grid);
                        let v = input_transform(&tile, &mats);
                        for (m, &s) in batch_taps.iter_mut().zip(v.as_slice()) {
                            *m = m.max(s.abs());
                        }
                    }
                }
            }
        }
        for (cal, &m) in n.input_taps.iter_mut().zip(&batch_taps) {
            cal.observe_max(m);
        }
        n.input_max.observe_max(x.abs_max());
        n.output_max
            .observe_max(super::backends::estimate_output_max(x, &n.weights));
    }

    /// Closes one observed batch: advances the batch count, evaluates the
    /// stability criterion and returns `true` exactly once, when the freeze
    /// decision fires — the caller must then install the frozen integer
    /// state and call [`RunningCalibration::mark_frozen`].
    pub(crate) fn finish_batch(&self) -> bool {
        let mut g = self.inner.lock().expect("calibration poisoned");
        if g.frozen_at.is_some() || g.freeze_claimed || g.degraded {
            return false;
        }
        g.batches += 1;
        let ranges: Vec<f32> = g
            .nodes
            .iter()
            .flat_map(|n| {
                let mut v = vec![n.input_max.max_or_default(), n.output_max.max_or_default()];
                v.extend(n.input_taps.iter().map(|c| c.max_or_default()));
                v
            })
            .collect();
        g.last_drift = match &g.last_ranges {
            None => f32::INFINITY,
            Some(prev) => ranges
                .iter()
                .zip(prev)
                .map(|(&now, &was)| (now - was).abs() / now.abs().max(f32::EPSILON))
                .fold(0.0_f32, f32::max),
        };
        g.last_ranges = Some(ranges);
        let stable =
            g.batches >= self.policy.min_batches && g.last_drift <= self.policy.stability_tol;
        let forced = g.batches >= self.policy.max_batches;
        if stable || forced {
            g.freeze_claimed = true;
            return true;
        }
        false
    }

    /// Snapshot of every node's converged ranges for the freeze step.
    pub(crate) fn frozen_ranges(&self) -> Vec<FrozenRanges> {
        let g = self.inner.lock().expect("calibration poisoned");
        g.nodes
            .iter()
            .map(|n| FrozenRanges {
                node: n.node,
                weights: Arc::clone(&n.weights),
                input_max: n.input_max.max_or_default(),
                input_taps: Tensor::from_fn(
                    &[
                        (n.input_taps.len() as f64).sqrt() as usize,
                        (n.input_taps.len() as f64).sqrt() as usize,
                    ],
                    |i| n.input_taps[i].max_or_default(),
                ),
                weight_taps: n
                    .weight_taps
                    .clone()
                    .expect("weight taps computed on first observe"),
                output_max: n.output_max.max_or_default(),
            })
            .collect()
    }

    /// Flips the public state to frozen; called by the executor *after* the
    /// integer state is installed, so no reader ever sees "frozen" with
    /// half-installed nodes.
    pub(crate) fn mark_frozen(&self) {
        let mut g = self.inner.lock().expect("calibration poisoned");
        let batches = g.batches;
        g.frozen_at.get_or_insert(batches);
    }

    /// Marks the calibrator degraded after a failed freeze: `frozen_at` stays
    /// `None` so [`RunningCalibration::observing`] keeps routing runs down the
    /// exact-FP32 path, while the trackers and the freeze decision go inert.
    /// Terminal — there is no recovery path by design (a failed freeze means
    /// the integer state cannot be trusted; FP32 replies stay correct).
    pub(crate) fn mark_degraded(&self) {
        let mut g = self.inner.lock().expect("calibration poisoned");
        g.degraded = true;
        g.freeze_claimed = true;
    }

    /// The quantization config calibration prepares for (None on a float
    /// executor, where the calibrator is static).
    pub(crate) fn quant_config(&self) -> Option<WinogradQuantConfig> {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::TileSize;
    use wino_tensor::normal;

    fn one_node_cal(policy: CalibrationPolicy) -> RunningCalibration {
        let w = Arc::new(normal(&[4, 4, 3, 3], 0.0, 0.2, 1));
        RunningCalibration::from_nodes(
            policy,
            Some(WinogradQuantConfig::tapwise_po2(TileSize::F4, 8)),
            vec![(3, w)],
        )
    }

    #[test]
    fn empty_node_set_is_static() {
        let cal = RunningCalibration::from_nodes(
            CalibrationPolicy::default(),
            Some(WinogradQuantConfig::default()),
            vec![],
        );
        assert_eq!(cal.state(), CalibrationState::Static);
        assert!(cal.state().is_frozen());
        assert!(!cal.observing());
        assert!(
            !cal.finish_batch(),
            "static calibrators never ask to freeze"
        );
    }

    #[test]
    fn stable_ranges_freeze_after_min_batches() {
        let cal = one_node_cal(CalibrationPolicy {
            momentum: 0.5,
            min_batches: 3,
            stability_tol: 0.05,
            max_batches: 100,
        });
        let x = normal(&[1, 4, 8, 8], 0.0, 1.0, 7);
        let mut frozen_on = None;
        for batch in 1..=20 {
            cal.observe_node(3, &x);
            if cal.finish_batch() {
                frozen_on = Some(batch);
                cal.mark_frozen();
                break;
            }
        }
        // Identical batches: drift hits zero immediately, so the freeze fires
        // the moment min_batches is met.
        assert_eq!(frozen_on, Some(3));
        assert_eq!(cal.state(), CalibrationState::Frozen { batches: 3 });
        assert_eq!(cal.state().label(), "frozen@3");
    }

    #[test]
    fn drifting_ranges_defer_the_freeze_until_stable() {
        let cal = one_node_cal(CalibrationPolicy {
            momentum: 0.5,
            min_batches: 2,
            stability_tol: 0.05,
            max_batches: 100,
        });
        let mut frozen_on = None;
        for batch in 1..=30 {
            // Amplitude doubles for the first five batches, then traffic
            // turns stationary (one recurring batch shape).
            let std = 2.0_f32.powi(batch.min(5));
            let seed = if batch <= 5 { 60 + batch as u64 } else { 999 };
            let x = normal(&[1, 4, 8, 8], 0.0, std, seed);
            cal.observe_node(3, &x);
            if cal.finish_batch() {
                frozen_on = Some(batch);
                cal.mark_frozen();
                break;
            }
        }
        let frozen_on = frozen_on.expect("must eventually freeze");
        assert!(
            frozen_on > 5,
            "froze at batch {frozen_on}, while ranges were still doubling"
        );
        // The frozen range reflects the late, loud batches — not batch one.
        let frozen_max = cal.input_max_for(3).unwrap();
        assert!(
            frozen_max > 2.0,
            "input range {frozen_max} stuck near the first quiet batch"
        );
    }

    #[test]
    fn max_batches_forces_the_freeze() {
        let cal = one_node_cal(CalibrationPolicy {
            momentum: 0.9,
            min_batches: 2,
            stability_tol: 1e-6,
            max_batches: 4,
        });
        let mut fired = None;
        for batch in 1..=10 {
            // Never stable: amplitude alternates 1x / 3x.
            let x = normal(
                &[1, 4, 8, 8],
                0.0,
                if batch % 2 == 0 { 3.0 } else { 1.0 },
                batch as u64,
            );
            cal.observe_node(3, &x);
            if cal.finish_batch() {
                fired = Some(batch);
                cal.mark_frozen();
                break;
            }
        }
        assert_eq!(fired, Some(4), "the max_batches backstop must fire");
    }

    #[test]
    fn degraded_calibrator_is_terminal_and_keeps_observing_path() {
        let cal = one_node_cal(CalibrationPolicy::quick(1));
        let x = normal(&[1, 4, 8, 8], 0.0, 1.0, 5);
        cal.observe_node(3, &x);
        let _ = cal.finish_batch();
        cal.observe_node(3, &x);
        assert!(cal.finish_batch(), "freeze decision fires");
        // The install failed — mark degraded instead of frozen.
        cal.mark_degraded();
        assert_eq!(cal.state(), CalibrationState::Degraded { batches: 2 });
        assert_eq!(cal.state().label(), "degraded@2");
        assert!(cal.state().is_degraded());
        assert!(
            cal.observing(),
            "degraded models stay pinned to the FP32 observe path"
        );
        // Trackers are inert and the freeze never refires.
        let frozen_max = cal.input_max_for(3).unwrap();
        cal.observe_node(3, &normal(&[1, 4, 8, 8], 0.0, 100.0, 6));
        assert!(!cal.finish_batch(), "degraded calibrators never freeze");
        assert_eq!(cal.input_max_for(3).unwrap(), frozen_max);
    }

    #[test]
    fn guard_ignores_observations_after_freeze() {
        let cal = one_node_cal(CalibrationPolicy::quick(1));
        let x = normal(&[1, 4, 8, 8], 0.0, 1.0, 5);
        cal.observe_node(3, &x);
        // Drift needs a previous batch to compare against, so even a
        // min_batches=1 policy takes two identical batches to stabilize.
        assert!(!cal.finish_batch(), "no drift measurement after one batch");
        cal.observe_node(3, &x);
        assert!(cal.finish_batch());
        cal.mark_frozen();
        let frozen_max = cal.input_max_for(3).unwrap();
        let loud = normal(&[1, 4, 8, 8], 0.0, 100.0, 6);
        cal.observe_node(3, &loud);
        assert!(!cal.finish_batch(), "frozen calibrators never re-freeze");
        assert_eq!(
            cal.input_max_for(3).unwrap(),
            frozen_max,
            "the recalibration guard let a frozen range move"
        );
    }
}
