//! Per-layer kernel planning.
//!
//! The accelerator's compiler picks a kernel per convolution layer; the cycle
//! simulator (`accel_sim::simulate_network`) models that with its full timing
//! model. The numeric engine cannot afford a cycle simulation per planning
//! decision, so [`Planner`] uses the same *structure* — the shared
//! [`Kernel`] / [`KernelChoice`] taxonomy and the 3×3 stride-1 eligibility
//! rule from `wino_nets` — with an arithmetic-work cost model: Winograd-domain
//! multiplies plus a transform-bandwidth term. The two selectors agree on the
//! class level (standard layers always run im2col in both; Winograd-eligible
//! layers run a Winograd kernel wherever the simulator chooses one), which the
//! `engine_dispatch` integration test pins down.

use serde::{Deserialize, Serialize};
use wino_nets::{ConvLayer, Graph, GraphOp, Kernel, KernelChoice, Network};
use wino_tensor::ConvParams;

/// Relative cost of transforming one Winograd-domain element versus one MAC.
///
/// The transformation engines of the paper sustain roughly one tile element
/// per cycle per lane while the Cube Unit retires hundreds of MACs per cycle;
/// on the CPU backends the ratio is flatter. A small constant keeps the model
/// honest about transform overhead without drowning the MAC savings.
const TRANSFORM_COST: f64 = 2.0;

/// The kernel chosen for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// Layer name from the inventory.
    pub name: String,
    /// The selected kernel.
    pub kernel: Kernel,
    /// The numeric geometry the engine will execute.
    pub params: ConvParams,
    /// The modelled cost of the selected kernel (arbitrary units).
    pub cost: f64,
    /// The modelled cost of the im2col baseline (for per-layer gain).
    pub im2col_cost: f64,
}

impl LayerPlan {
    /// Modelled speed-up of the chosen kernel over im2col.
    pub fn modelled_gain(&self) -> f64 {
        if self.cost <= 0.0 {
            1.0
        } else {
            self.im2col_cost / self.cost
        }
    }
}

/// The per-layer kernel choices for a whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Network name.
    pub network: String,
    /// Kernel availability the plan was made for.
    pub kernels: KernelChoice,
    /// One entry per layer descriptor, in inventory order.
    pub layers: Vec<LayerPlan>,
}

impl ExecutionPlan {
    /// How many layers chose each kernel.
    pub fn kernel_histogram(&self) -> [(Kernel, usize); 3] {
        let mut counts = [0usize; 3];
        for l in &self.layers {
            match l.kernel {
                Kernel::Im2col => counts[0] += 1,
                Kernel::WinogradF2 => counts[1] += 1,
                Kernel::WinogradF4 => counts[2] += 1,
            }
        }
        [
            (Kernel::Im2col, counts[0]),
            (Kernel::WinogradF2, counts[1]),
            (Kernel::WinogradF4, counts[2]),
        ]
    }

    /// Modelled end-to-end gain over an all-im2col execution.
    pub fn modelled_gain(&self) -> f64 {
        let base: f64 = self.layers.iter().map(|l| l.im2col_cost).sum();
        let with: f64 = self.layers.iter().map(|l| l.cost).sum();
        if with <= 0.0 {
            1.0
        } else {
            base / with
        }
    }
}

/// An activation function fused into a convolution epilogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Activation {
    /// No activation.
    #[default]
    None,
    /// Rectified linear unit, `max(0, ·)`.
    Relu,
}

/// Which epilogue fusion classes a planner pass may apply.
///
/// Each class can be disabled independently (pinned by the
/// `epilogue_fusion` integration tests), which is what
/// `GraphExecutor::without_fusion` and the A/B benchmark rows are built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionClasses {
    /// Absorb sole-consumer ReLUs into the producing conv's epilogue.
    pub relu: bool,
    /// Absorb two-input residual adds into the conv producing one operand.
    pub residual: bool,
}

impl FusionClasses {
    /// Every fusion class enabled (the default).
    pub fn all() -> Self {
        Self {
            relu: true,
            residual: true,
        }
    }

    /// No fusion at all: every node runs separately.
    pub fn none() -> Self {
        Self {
            relu: false,
            residual: false,
        }
    }

    /// Only conv → ReLU fusion (the PR 4 baseline).
    pub fn relu_only() -> Self {
        Self {
            relu: true,
            residual: false,
        }
    }

    /// Only conv → add fusion (no activation absorption).
    pub fn residual_only() -> Self {
        Self {
            relu: false,
            residual: true,
        }
    }

    /// Whether any class is enabled.
    pub fn any(&self) -> bool {
        self.relu || self.residual
    }
}

impl Default for FusionClasses {
    fn default() -> Self {
        Self::all()
    }
}

/// The plan-time description of one conv node's fused output epilogue:
/// what the kernel applies to each output element before the single store.
///
/// `residual` names the *node* whose activation is added (the executor
/// resolves it to a live arena buffer at run time); `requant` records that
/// the node executes on the integer pipeline, where the output
/// requantization rides the same epilogue stage (set by the executor at
/// prepare time — the planner is numerics-agnostic). The run-time operand
/// form is [`crate::epilogue::EpilogueOps`].
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EpiloguePlan {
    /// Whether a per-channel bias is applied, from the conv layer's own
    /// [`ConvLayer::bias`] flag (backend callers that fuse a bias outside a
    /// graph set it directly).
    pub bias: bool,
    /// Producer of the residual operand added in the epilogue.
    pub residual: Option<usize>,
    /// Activation applied *before* the residual sum (`add(x, relu(conv))`).
    pub pre_add_activation: Activation,
    /// Activation applied after the residual sum, or directly after bias
    /// when no residual is fused.
    pub activation: Activation,
    /// Whether output requantization happens in the epilogue (integer path).
    pub requant: bool,
    /// Whether the elided add was the residual's topologically-last consumer,
    /// so a fusing kernel may write the finished output **into the residual
    /// buffer** instead of allocating a third tensor — the accelerator's
    /// datapath, where the residual sum leaves the array over the operand it
    /// consumed. Kernels that cannot accumulate in place simply borrow the
    /// residual as usual; the flag is permission, not obligation.
    pub in_place: bool,
}

impl EpiloguePlan {
    /// Whether this plan fuses nothing beyond the bare convolution.
    pub fn is_identity(&self) -> bool {
        !self.bias
            && self.residual.is_none()
            && self.pre_add_activation == Activation::None
            && self.activation == Activation::None
    }

    /// Whether any ReLU (pre- or post-residual) is fused.
    pub fn has_relu(&self) -> bool {
        self.pre_add_activation == Activation::Relu || self.activation == Activation::Relu
    }

    /// How many graph nodes this epilogue absorbs (elides).
    pub fn absorbed_nodes(&self) -> usize {
        usize::from(self.residual.is_some()) + usize::from(self.has_relu())
    }
}

/// The outcome of [`Planner::fuse_epilogues`] over one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpilogueFusion {
    /// One epilogue plan per node id (identity for non-conv nodes and for
    /// convs nothing fused into).
    pub plans: Vec<EpiloguePlan>,
    /// For every absorbed (elided) tail node, the conv whose epilogue now
    /// performs its work; the executor passes such nodes through untouched.
    pub absorbed_into: Vec<Option<usize>>,
}

impl EpilogueFusion {
    /// Total nodes absorbed into conv epilogues.
    pub fn fused_node_count(&self) -> usize {
        self.absorbed_into.iter().flatten().count()
    }
}

/// Selects a kernel per layer given the kernels an engine build offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Planner {
    available: KernelChoice,
}

impl Planner {
    /// A planner over the given kernel availability.
    pub fn new(available: KernelChoice) -> Self {
        Self { available }
    }

    /// The availability this planner selects from.
    pub fn available(&self) -> KernelChoice {
        self.available
    }

    /// The modelled execution cost of one layer under one kernel, in
    /// multiply-equivalents per image.
    ///
    /// im2col: the standard-algorithm MACs. Winograd F(m): the Winograd-domain
    /// elementwise multiplies (`tiles · t² · C_in · C_out`) plus the input and
    /// output transformation traffic (`tiles · t² · (C_in + C_out)`) weighted
    /// by [`TRANSFORM_COST`]. Tile padding waste on resolutions that are not
    /// multiples of `m` is captured by the `ceil` tile counts.
    pub fn layer_cost(layer: &ConvLayer, kernel: Kernel) -> f64 {
        let reps = layer.repeats.max(1) as f64;
        match kernel.tile_m() {
            None => layer.macs(1) as f64,
            Some(m) => {
                let t = m + 2;
                let tiles = (layer.h_out.div_ceil(m) * layer.w_out.div_ceil(m)) as f64;
                let taps = (t * t) as f64;
                let multiplies = tiles * taps * (layer.c_in * layer.c_out) as f64;
                let transforms = tiles * taps * (layer.c_in + layer.c_out) as f64;
                reps * (multiplies + TRANSFORM_COST * transforms)
            }
        }
    }

    /// Picks the cheapest available kernel that supports the layer.
    pub fn plan_layer(&self, layer: &ConvLayer) -> LayerPlan {
        let im2col_cost = Self::layer_cost(layer, Kernel::Im2col);
        let (kernel, cost) = self
            .available
            .candidates_for(layer)
            .into_iter()
            .map(|k| (k, Self::layer_cost(layer, k)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .expect("im2col is always a candidate");
        LayerPlan {
            name: layer.name.clone(),
            kernel,
            params: layer.params(),
            cost,
            im2col_cost,
        }
    }

    /// Decides every epilogue fusion over a graph: pattern-matches
    /// `conv → [add residual] → [relu]` chains (and the Darknet-style
    /// `add(x, relu(conv))` variant) and emits one [`EpiloguePlan`] per node
    /// plus the pass-through map of absorbed tail nodes.
    ///
    /// The rules, all resting on sole-consumer guarantees so no elided tensor
    /// is needed elsewhere:
    ///
    /// * **ReLU** (`classes.relu`): a ReLU whose producer is a conv with no
    ///   other consumer is absorbed as the conv's trailing activation; a ReLU
    ///   solely consuming an *already absorbed* residual add becomes the
    ///   fused conv's post-residual activation.
    /// * **Residual** (`classes.residual`): a two-input add where exactly one
    ///   operand is a sole-consumer conv tail (the conv itself, or its
    ///   already-absorbed trailing ReLU) and the *other* operand was produced
    ///   before that conv runs is absorbed: the conv reads the residual
    ///   in-register during its output transform. When the conv tail carried
    ///   a fused ReLU, that activation moves before the residual sum
    ///   (`add(x, relu(conv))` semantics are preserved exactly).
    ///
    /// Negative cases, deliberately left unfused: a conv with more than one
    /// consumer (its pre-activation output must stay live), an add whose
    /// operands are *both* sole-consumer conv tails (fusing either side would
    /// read the other's output before it exists, and the choice would be
    /// arbitrary — ResNet projection blocks hit this), an add with more than
    /// two operands, and any chain crossing a structural node (nothing fuses
    /// through a concat, pool or upsample).
    ///
    /// Every fusion is exact: the fused epilogue evaluates the same
    /// elementwise expression in the same order as the separate nodes
    /// ([`crate::epilogue::apply_epilogue`] is the reference), so fused and
    /// separate execution are bitwise identical on both the float and the
    /// integer path — pinned by `tests/epilogue_fusion.rs`.
    pub fn fuse_epilogues(&self, graph: &Graph, classes: FusionClasses) -> EpilogueFusion {
        let nodes = graph.nodes();
        let n = nodes.len();
        let consumers = graph.consumer_counts();
        let consumer_lists = graph.consumers();
        let mut fusion = EpilogueFusion {
            plans: vec![EpiloguePlan::default(); n],
            absorbed_into: vec![None; n],
        };
        // A conv's own bias is part of its epilogue regardless of which
        // fusion classes are enabled: it is the layer's semantics, not an
        // absorbed neighbour node.
        for (id, node) in nodes.iter().enumerate() {
            if let GraphOp::Conv(layer) = &node.op {
                fusion.plans[id].bias = layer.bias;
            }
        }
        if !classes.any() {
            return fusion;
        }
        // The id of the conv whose epilogue an add operand leads back to, if
        // that operand is a fusable conv tail: either the conv itself or a
        // ReLU already absorbed into it. `pre` is true when the tail carries
        // an absorbed activation that must run before the residual sum.
        let candidate = |fusion: &EpilogueFusion, x: usize| -> Option<(usize, bool)> {
            if consumers[x] != 1 {
                return None;
            }
            match nodes[x].op {
                GraphOp::Conv(_) if fusion.plans[x].residual.is_none() => Some((x, false)),
                GraphOp::Relu => match fusion.absorbed_into[x] {
                    Some(c) if fusion.plans[c].residual.is_none() => Some((c, true)),
                    _ => None,
                },
                _ => None,
            }
        };
        for (id, node) in nodes.iter().enumerate() {
            match node.op {
                GraphOp::Relu if classes.relu => {
                    let src = node.inputs[0];
                    if consumers[src] != 1 {
                        continue;
                    }
                    match nodes[src].op {
                        // Plain conv → relu: the PR 4 fusion class.
                        GraphOp::Conv(_)
                            if fusion.plans[src].residual.is_none()
                                && fusion.plans[src].activation == Activation::None =>
                        {
                            fusion.plans[src].activation = Activation::Relu;
                            fusion.absorbed_into[id] = Some(src);
                        }
                        // relu(add(conv, x)) where the add is already fused:
                        // the ReLU becomes the conv's post-residual epilogue.
                        GraphOp::Add => {
                            if let Some(c) = fusion.absorbed_into[src] {
                                if fusion.plans[c].activation == Activation::None {
                                    fusion.plans[c].activation = Activation::Relu;
                                    fusion.absorbed_into[id] = Some(c);
                                }
                            }
                        }
                        _ => {}
                    }
                }
                GraphOp::Add if classes.residual => {
                    if node.inputs.len() != 2 || node.inputs[0] == node.inputs[1] {
                        continue;
                    }
                    let (p, q) = (node.inputs[0], node.inputs[1]);
                    let (conv, pre, residual) = match (candidate(&fusion, p), candidate(&fusion, q))
                    {
                        // Both operands are conv tails: ambiguous, and the
                        // later conv cannot read the earlier one's output
                        // before both exist as separate nodes. Keep apart.
                        (Some(_), Some(_)) | (None, None) => continue,
                        (Some((c, pre)), None) => (c, pre, q),
                        (None, Some((c, pre))) => (c, pre, p),
                    };
                    // The residual operand must already be computed when the
                    // conv runs (graphs execute in topological order).
                    if residual >= conv {
                        continue;
                    }
                    // In-place accumulation is safe when this add is the
                    // residual's last consumer (everyone else has already
                    // read it by the time the conv runs), the residual is
                    // not the conv's own input (which the kernel still reads
                    // while writing), and the residual is not itself an
                    // Output node (whose tensor the executor must keep for
                    // the run's result set).
                    let in_place = residual != nodes[conv].inputs[0]
                        && !matches!(nodes[residual].op, GraphOp::Output)
                        && consumer_lists[residual]
                            .iter()
                            .all(|&c| c == id || c < conv);
                    let plan = &mut fusion.plans[conv];
                    plan.residual = Some(residual);
                    plan.in_place = in_place;
                    if pre {
                        // The tail's absorbed ReLU ran before the add in the
                        // separate graph; keep it before the residual sum.
                        debug_assert_eq!(plan.activation, Activation::Relu);
                        plan.pre_add_activation = Activation::Relu;
                        plan.activation = Activation::None;
                    }
                    fusion.absorbed_into[id] = Some(conv);
                }
                _ => {}
            }
        }
        fusion
    }

    /// Plans a whole network.
    pub fn plan(&self, network: &Network) -> ExecutionPlan {
        ExecutionPlan {
            network: network.name.clone(),
            kernels: self.available,
            layers: network.layers.iter().map(|l| self.plan_layer(l)).collect(),
        }
    }
}

impl Default for Planner {
    fn default() -> Self {
        Self::new(KernelChoice::WithF2AndF4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_nets::{resnet34, resnet50, LayerKind};

    #[test]
    fn standard_layers_always_plan_im2col() {
        let planner = Planner::default();
        let plan = planner.plan(&resnet50());
        for (layer, lp) in resnet50().layers.iter().zip(plan.layers.iter()) {
            if layer.kind() == LayerKind::Standard {
                assert_eq!(lp.kernel, Kernel::Im2col, "layer {}", lp.name);
            }
        }
    }

    #[test]
    fn eligible_layers_prefer_f4_when_available() {
        let planner = Planner::new(KernelChoice::WithF4);
        let plan = planner.plan(&resnet34());
        let hist = plan.kernel_histogram();
        assert!(hist[2].1 > 0, "no layer chose F4");
        // Every Winograd-eligible descriptor should move off im2col (the MACs
        // are dominated by the repeated 3x3 blocks, not the descriptor count).
        for (layer, lp) in resnet34().layers.iter().zip(plan.layers.iter()) {
            if layer.kind() == LayerKind::WinogradEligible {
                assert_eq!(lp.kernel, Kernel::WinogradF4, "layer {}", lp.name);
            }
        }
        assert!(plan.modelled_gain() > 1.2);
    }

    #[test]
    fn im2col_only_build_never_plans_winograd() {
        let planner = Planner::new(KernelChoice::Im2colOnly);
        let plan = planner.plan(&resnet34());
        assert!(plan.layers.iter().all(|l| l.kernel == Kernel::Im2col));
        assert!((plan.modelled_gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relu_fusion_covers_sole_consumer_relus_only() {
        use wino_nets::GraphBuilder;
        let mut g = GraphBuilder::new("fuse-test", 8);
        let x = g.input("in", 4, 8, 8);
        // Fusable: conv whose only consumer is the relu.
        let c1 = g.conv(ConvLayer::conv3x3("c1", 4, 4, 8), x);
        let r1 = g.relu("r1", c1);
        // Not fusable: conv feeding both a relu and a residual add.
        let c2 = g.conv(ConvLayer::conv3x3("c2", 4, 4, 8), r1);
        let r2 = g.relu("r2", c2);
        let a = g.add("res", vec![c2, r2]);
        g.output("out", a);
        let graph = g.finish();
        let fusion = Planner::default().fuse_epilogues(&graph, FusionClasses::all());
        assert_eq!(fusion.absorbed_into[r1], Some(c1), "sole-consumer relu");
        assert_eq!(fusion.plans[c1].activation, Activation::Relu);
        assert!(
            fusion.absorbed_into[r2].is_none() && fusion.plans[c2].is_identity(),
            "multi-consumer conv must not fuse"
        );
        // The add reads c2 (multi-consumer) and r2 (unfused relu): no
        // residual fusion either.
        assert!(fusion.absorbed_into[a].is_none());
        assert_eq!(fusion.fused_node_count(), 1);
    }

    /// A ResNet-style residual tail: conv → add(identity) → relu.
    fn residual_tail_graph() -> (Graph, usize, usize, usize, usize) {
        use wino_nets::GraphBuilder;
        let mut g = GraphBuilder::new("res-tail", 8);
        let x = g.input("in", 4, 8, 8);
        let c1 = g.conv_relu(ConvLayer::conv3x3("c1", 4, 4, 8), x);
        let c2 = g.conv(ConvLayer::conv3x3("c2", 4, 4, 8), c1);
        let a = g.add("res", vec![c2, c1]);
        let r = g.relu("res.relu", a);
        g.output("out", r);
        (g.finish(), c1, c2, a, r)
    }

    #[test]
    fn residual_tail_fuses_conv_add_relu_as_one_epilogue() {
        let (graph, _c1, c2, a, r) = residual_tail_graph();
        let fusion = Planner::default().fuse_epilogues(&graph, FusionClasses::all());
        let plan = &fusion.plans[c2];
        assert!(plan.residual.is_some(), "identity residual must fuse");
        assert_eq!(plan.activation, Activation::Relu, "post-add relu rides");
        assert_eq!(plan.pre_add_activation, Activation::None);
        assert_eq!(fusion.absorbed_into[a], Some(c2));
        assert_eq!(fusion.absorbed_into[r], Some(c2));
        assert_eq!(plan.absorbed_nodes(), 2);
    }

    #[test]
    fn darknet_tail_moves_the_relu_before_the_residual_sum() {
        // add(x, relu(conv)): the absorbed relu must become pre-add.
        use wino_nets::GraphBuilder;
        let mut g = GraphBuilder::new("darknet-tail", 8);
        let x = g.input("in", 4, 8, 8);
        let prev = g.conv_relu(ConvLayer::conv3x3("c0", 4, 4, 8), x);
        let c = g.conv(ConvLayer::conv3x3("c1", 4, 4, 8), prev);
        let r = g.relu("c1.relu", c);
        let a = g.add("res", vec![prev, r]);
        g.output("out", a);
        let graph = g.finish();
        let fusion = Planner::default().fuse_epilogues(&graph, FusionClasses::all());
        let plan = &fusion.plans[c];
        assert_eq!(plan.residual, Some(prev));
        assert_eq!(plan.pre_add_activation, Activation::Relu);
        assert_eq!(plan.activation, Activation::None);
        assert_eq!(fusion.absorbed_into[a], Some(c));
        assert_eq!(fusion.absorbed_into[r], Some(c));
    }

    #[test]
    fn ambiguous_and_unavailable_residuals_stay_separate() {
        use wino_nets::GraphBuilder;
        // Both add inputs are sole-consumer convs (projection block shape):
        // neither fuses.
        let mut g = GraphBuilder::new("both-conv", 8);
        let x = g.input("in", 4, 8, 8);
        let c1 = g.conv(ConvLayer::conv3x3("c1", 4, 4, 8), x);
        let c2 = g.conv(ConvLayer::conv1x1("proj", 4, 4, 8), x);
        let a = g.add("res", vec![c1, c2]);
        g.output("out", a);
        let fusion = Planner::default().fuse_epilogues(&g.finish(), FusionClasses::all());
        assert!(fusion.absorbed_into[a].is_none(), "ambiguous add fused");
        assert!(fusion.plans[c1].is_identity() && fusion.plans[c2].is_identity());

        // Residual produced *after* the conv (FPN top-down shape): the conv
        // cannot read it, so nothing fuses.
        let mut g = GraphBuilder::new("late-residual", 8);
        let x = g.input("in", 4, 8, 8);
        let c = g.conv(ConvLayer::conv3x3("lateral", 4, 4, 8), x);
        let p = g.max_pool("pool", 2, 2, 0, x);
        let u = g.upsample("up", 2, p);
        let a = g.add("td", vec![c, u]);
        g.output("out", a);
        let fusion = Planner::default().fuse_epilogues(&g.finish(), FusionClasses::all());
        assert!(fusion.absorbed_into[a].is_none(), "late residual fused");
    }

    #[test]
    fn in_place_is_granted_only_when_the_add_was_the_last_consumer() {
        use wino_nets::GraphBuilder;
        // Real basic-block shape: the block input feeds c1 and the add, and
        // c1 (not the block input) feeds c2 — the add is the block input's
        // last consumer, so the kernel may overwrite it.
        let (graph, _c1, c2, _a, _r) = residual_tail_graph();
        let fusion = Planner::default().fuse_epilogues(&graph, FusionClasses::all());
        // In residual_tail_graph the residual IS c2's direct input (c1), so
        // in-place must be refused: the kernel still reads that tensor.
        assert!(fusion.plans[c2].residual.is_some());
        assert!(!fusion.plans[c2].in_place, "conv input must not be stolen");

        // Distinct residual whose last consumer is the elided add: granted.
        let mut g = GraphBuilder::new("steal-ok", 8);
        let x = g.input("in", 4, 8, 8);
        let c1 = g.conv_relu(ConvLayer::conv3x3("c1", 4, 4, 8), x);
        let c2 = g.conv(ConvLayer::conv3x3("c2", 4, 4, 8), c1);
        let a = g.add("res", vec![c2, x]);
        g.output("out", a);
        let fusion = Planner::default().fuse_epilogues(&g.finish(), FusionClasses::all());
        assert_eq!(fusion.plans[c2].residual, Some(x));
        assert!(fusion.plans[c2].in_place, "last-consumer residual steals");

        // Residual with a consumer *after* the conv (a route/tap): borrowed.
        let mut g = GraphBuilder::new("steal-no", 8);
        let x = g.input("in", 4, 8, 8);
        let c1 = g.conv_relu(ConvLayer::conv3x3("c1", 4, 4, 8), x);
        let c2 = g.conv(ConvLayer::conv3x3("c2", 4, 4, 8), c1);
        let a = g.add("res", vec![c2, x]);
        let cat = g.concat("route", vec![a, x]);
        g.output("out", cat);
        let fusion = Planner::default().fuse_epilogues(&g.finish(), FusionClasses::all());
        assert_eq!(fusion.plans[c2].residual, Some(x));
        assert!(
            !fusion.plans[c2].in_place,
            "later consumer forbids stealing"
        );
    }

    #[test]
    fn fusion_classes_disable_independently() {
        let (graph, _c1, c2, a, r) = residual_tail_graph();
        let planner = Planner::default();
        let none = planner.fuse_epilogues(&graph, FusionClasses::none());
        assert_eq!(none.fused_node_count(), 0);
        let relu_only = planner.fuse_epilogues(&graph, FusionClasses::relu_only());
        assert!(relu_only.absorbed_into[a].is_none(), "residual class off");
        assert!(
            relu_only.absorbed_into[r].is_none(),
            "post-add relu needs the add fused first"
        );
        assert!(relu_only.fused_node_count() > 0, "c1's relu still fuses");
        let res_only = planner.fuse_epilogues(&graph, FusionClasses::residual_only());
        assert_eq!(res_only.absorbed_into[a], Some(c2), "residual class on");
        assert!(res_only.absorbed_into[r].is_none(), "relu class off");
        assert!(!res_only.plans[c2].has_relu());
    }

    #[test]
    fn f4_wins_over_f2_on_large_layers() {
        let layer = ConvLayer::conv3x3("big", 256, 256, 64);
        let f2 = Planner::layer_cost(&layer, Kernel::WinogradF2);
        let f4 = Planner::layer_cost(&layer, Kernel::WinogradF4);
        let im2col = Planner::layer_cost(&layer, Kernel::Im2col);
        assert!(f4 < f2, "F4 ({f4}) should be cheaper than F2 ({f2})");
        assert!(f2 < im2col);
    }

    #[test]
    fn layer_gain_stays_below_mac_reduction() {
        let layer = ConvLayer::conv3x3("l", 512, 512, 128);
        let planner = Planner::new(KernelChoice::WithF4);
        let lp = planner.plan_layer(&layer);
        assert!(lp.modelled_gain() > 1.5);
        assert!(
            lp.modelled_gain() <= 4.0,
            "gain {} beyond the 4x MAC bound",
            lp.modelled_gain()
        );
    }
}
