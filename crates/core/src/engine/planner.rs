//! Per-layer kernel planning.
//!
//! The accelerator's compiler picks a kernel per convolution layer; the cycle
//! simulator (`accel_sim::simulate_network`) models that with its full timing
//! model. The numeric engine cannot afford a cycle simulation per planning
//! decision, so [`Planner`] uses the same *structure* — the shared
//! [`Kernel`] / [`KernelChoice`] taxonomy and the 3×3 stride-1 eligibility
//! rule from `wino_nets` — with an arithmetic-work cost model: Winograd-domain
//! multiplies plus a transform-bandwidth term. The two selectors agree on the
//! class level (standard layers always run im2col in both; Winograd-eligible
//! layers run a Winograd kernel wherever the simulator chooses one), which the
//! `engine_dispatch` integration test pins down.

use serde::{Deserialize, Serialize};
use wino_nets::{ConvLayer, Graph, GraphOp, Kernel, KernelChoice, Network};
use wino_tensor::ConvParams;

/// Relative cost of transforming one Winograd-domain element versus one MAC.
///
/// The transformation engines of the paper sustain roughly one tile element
/// per cycle per lane while the Cube Unit retires hundreds of MACs per cycle;
/// on the CPU backends the ratio is flatter. A small constant keeps the model
/// honest about transform overhead without drowning the MAC savings.
const TRANSFORM_COST: f64 = 2.0;

/// The kernel chosen for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPlan {
    /// Layer name from the inventory.
    pub name: String,
    /// The selected kernel.
    pub kernel: Kernel,
    /// The numeric geometry the engine will execute.
    pub params: ConvParams,
    /// The modelled cost of the selected kernel (arbitrary units).
    pub cost: f64,
    /// The modelled cost of the im2col baseline (for per-layer gain).
    pub im2col_cost: f64,
}

impl LayerPlan {
    /// Modelled speed-up of the chosen kernel over im2col.
    pub fn modelled_gain(&self) -> f64 {
        if self.cost <= 0.0 {
            1.0
        } else {
            self.im2col_cost / self.cost
        }
    }
}

/// The per-layer kernel choices for a whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Network name.
    pub network: String,
    /// Kernel availability the plan was made for.
    pub kernels: KernelChoice,
    /// One entry per layer descriptor, in inventory order.
    pub layers: Vec<LayerPlan>,
}

impl ExecutionPlan {
    /// How many layers chose each kernel.
    pub fn kernel_histogram(&self) -> [(Kernel, usize); 3] {
        let mut counts = [0usize; 3];
        for l in &self.layers {
            match l.kernel {
                Kernel::Im2col => counts[0] += 1,
                Kernel::WinogradF2 => counts[1] += 1,
                Kernel::WinogradF4 => counts[2] += 1,
            }
        }
        [
            (Kernel::Im2col, counts[0]),
            (Kernel::WinogradF2, counts[1]),
            (Kernel::WinogradF4, counts[2]),
        ]
    }

    /// Modelled end-to-end gain over an all-im2col execution.
    pub fn modelled_gain(&self) -> f64 {
        let base: f64 = self.layers.iter().map(|l| l.im2col_cost).sum();
        let with: f64 = self.layers.iter().map(|l| l.cost).sum();
        if with <= 0.0 {
            1.0
        } else {
            base / with
        }
    }
}

/// Selects a kernel per layer given the kernels an engine build offers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Planner {
    available: KernelChoice,
}

impl Planner {
    /// A planner over the given kernel availability.
    pub fn new(available: KernelChoice) -> Self {
        Self { available }
    }

    /// The availability this planner selects from.
    pub fn available(&self) -> KernelChoice {
        self.available
    }

    /// The modelled execution cost of one layer under one kernel, in
    /// multiply-equivalents per image.
    ///
    /// im2col: the standard-algorithm MACs. Winograd F(m): the Winograd-domain
    /// elementwise multiplies (`tiles · t² · C_in · C_out`) plus the input and
    /// output transformation traffic (`tiles · t² · (C_in + C_out)`) weighted
    /// by [`TRANSFORM_COST`]. Tile padding waste on resolutions that are not
    /// multiples of `m` is captured by the `ceil` tile counts.
    pub fn layer_cost(layer: &ConvLayer, kernel: Kernel) -> f64 {
        let reps = layer.repeats.max(1) as f64;
        match kernel.tile_m() {
            None => layer.macs(1) as f64,
            Some(m) => {
                let t = m + 2;
                let tiles = (layer.h_out.div_ceil(m) * layer.w_out.div_ceil(m)) as f64;
                let taps = (t * t) as f64;
                let multiplies = tiles * taps * (layer.c_in * layer.c_out) as f64;
                let transforms = tiles * taps * (layer.c_in + layer.c_out) as f64;
                reps * (multiplies + TRANSFORM_COST * transforms)
            }
        }
    }

    /// Picks the cheapest available kernel that supports the layer.
    pub fn plan_layer(&self, layer: &ConvLayer) -> LayerPlan {
        let im2col_cost = Self::layer_cost(layer, Kernel::Im2col);
        let (kernel, cost) = self
            .available
            .candidates_for(layer)
            .into_iter()
            .map(|k| (k, Self::layer_cost(layer, k)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .expect("im2col is always a candidate");
        LayerPlan {
            name: layer.name.clone(),
            kernel,
            params: layer.params(),
            cost,
            im2col_cost,
        }
    }

    /// Decides conv → ReLU fusion over a graph: for every node id the result
    /// holds `Some(relu_id)` when that node is a convolution whose output is
    /// consumed by exactly one node and that consumer is a ReLU, `None`
    /// otherwise.
    ///
    /// Fusing is always profitable under that condition — the ReLU runs
    /// in-register inside the conv's output epilogue instead of as a second
    /// pass over the activation — and it is exact: `max(0, ·)` commutes with
    /// nothing the epilogue reorders (float path) and with the positive
    /// output scale (integer path), so fused and separate execution are
    /// bitwise identical. A conv with more than one consumer must keep its
    /// pre-activation output live and is never fused.
    pub fn fuse_conv_relu(&self, graph: &Graph) -> Vec<Option<usize>> {
        let nodes = graph.nodes();
        let consumers = graph.consumer_counts();
        let mut fused = vec![None; nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            if matches!(node.op, GraphOp::Relu) {
                let src = node.inputs[0];
                if consumers[src] == 1 && matches!(nodes[src].op, GraphOp::Conv(_)) {
                    fused[src] = Some(id);
                }
            }
        }
        fused
    }

    /// Plans a whole network.
    pub fn plan(&self, network: &Network) -> ExecutionPlan {
        ExecutionPlan {
            network: network.name.clone(),
            kernels: self.available,
            layers: network.layers.iter().map(|l| self.plan_layer(l)).collect(),
        }
    }
}

impl Default for Planner {
    fn default() -> Self {
        Self::new(KernelChoice::WithF2AndF4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_nets::{resnet34, resnet50, LayerKind};

    #[test]
    fn standard_layers_always_plan_im2col() {
        let planner = Planner::default();
        let plan = planner.plan(&resnet50());
        for (layer, lp) in resnet50().layers.iter().zip(plan.layers.iter()) {
            if layer.kind() == LayerKind::Standard {
                assert_eq!(lp.kernel, Kernel::Im2col, "layer {}", lp.name);
            }
        }
    }

    #[test]
    fn eligible_layers_prefer_f4_when_available() {
        let planner = Planner::new(KernelChoice::WithF4);
        let plan = planner.plan(&resnet34());
        let hist = plan.kernel_histogram();
        assert!(hist[2].1 > 0, "no layer chose F4");
        // Every Winograd-eligible descriptor should move off im2col (the MACs
        // are dominated by the repeated 3x3 blocks, not the descriptor count).
        for (layer, lp) in resnet34().layers.iter().zip(plan.layers.iter()) {
            if layer.kind() == LayerKind::WinogradEligible {
                assert_eq!(lp.kernel, Kernel::WinogradF4, "layer {}", lp.name);
            }
        }
        assert!(plan.modelled_gain() > 1.2);
    }

    #[test]
    fn im2col_only_build_never_plans_winograd() {
        let planner = Planner::new(KernelChoice::Im2colOnly);
        let plan = planner.plan(&resnet34());
        assert!(plan.layers.iter().all(|l| l.kernel == Kernel::Im2col));
        assert!((plan.modelled_gain() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fusion_covers_sole_consumer_relus_only() {
        use wino_nets::GraphBuilder;
        let mut g = GraphBuilder::new("fuse-test", 8);
        let x = g.input("in", 4, 8, 8);
        // Fusable: conv whose only consumer is the relu.
        let c1 = g.conv(ConvLayer::conv3x3("c1", 4, 4, 8), x);
        let r1 = g.relu("r1", c1);
        // Not fusable: conv feeding both a relu and a residual add.
        let c2 = g.conv(ConvLayer::conv3x3("c2", 4, 4, 8), r1);
        let r2 = g.relu("r2", c2);
        let a = g.add("res", vec![c2, r2]);
        g.output("out", a);
        let graph = g.finish();
        let fused = Planner::default().fuse_conv_relu(&graph);
        assert_eq!(fused[c1], Some(r1), "sole-consumer relu must fuse");
        assert_eq!(fused[c2], None, "multi-consumer conv must not fuse");
        assert!(fused[r1].is_none() && fused[x].is_none());
    }

    #[test]
    fn f4_wins_over_f2_on_large_layers() {
        let layer = ConvLayer::conv3x3("big", 256, 256, 64);
        let f2 = Planner::layer_cost(&layer, Kernel::WinogradF2);
        let f4 = Planner::layer_cost(&layer, Kernel::WinogradF4);
        let im2col = Planner::layer_cost(&layer, Kernel::Im2col);
        assert!(f4 < f2, "F4 ({f4}) should be cheaper than F2 ({f2})");
        assert!(f2 < im2col);
    }

    #[test]
    fn layer_gain_stays_below_mac_reduction() {
        let layer = ConvLayer::conv3x3("l", 512, 512, 128);
        let planner = Planner::new(KernelChoice::WithF4);
        let lp = planner.plan_layer(&layer);
        assert!(lp.modelled_gain() > 1.5);
        assert!(
            lp.modelled_gain() <= 4.0,
            "gain {} beyond the 4x MAC bound",
            lp.modelled_gain()
        );
    }
}
