//! Chained whole-graph execution through the engine.
//!
//! [`crate::engine::NetworkExecutor`] runs inventory layers independently;
//! this module executes the real topologies of `wino_nets::graph_builders` —
//! activations flow node to node through residual adds, skip concats and FPN
//! merges, which is the deployment-style end-to-end setting the paper's
//! accuracy and throughput claims are about.
//!
//! Three concerns are layered on top of plain node-by-node evaluation:
//!
//! * **Planning + prepared state** ([`GraphExecutor::prepare`]): each conv
//!   node gets a kernel from the [`Planner`], its synthesized weights, and —
//!   for float Winograd nodes — its weight transformation, all computed once.
//!   On the quantized path the per-node [`IntWinogradConv`] is calibrated
//!   lazily from the first run's live activations and cached, so run 2+ pays
//!   neither calibration nor `prepare`; serving-style multi-batch loops reuse
//!   one [`PreparedGraph`].
//! * **Activation arena** ([`GraphExecution::peak_live_bytes`]): tensors are
//!   released the moment their last consumer has run and their buffers are
//!   recycled into later structural nodes (adds, concats), with peak live
//!   bytes and reuse counters reported per run.
//! * **Reference mode** ([`GraphExecutor::reference`]): every conv node runs
//!   the direct algorithm, giving the ground truth that the Winograd and
//!   integer graph runs are validated against in the integration tests.

use crate::engine::backends::estimate_output_max;
use crate::engine::executor::SynthCache;
use crate::engine::planner::{Activation, EpiloguePlan, FusionClasses, LayerPlan, Planner};
use crate::engine::running::{CalibrationPolicy, RunningCalibration};
use crate::engine::Engine;
use crate::epilogue::{apply_epilogue, EpilogueOps};
use crate::int_winograd::{IntWinogradConv, WinogradQuantConfig};
use crate::matrices::{TileSize, WinogradMatrices};
use crate::quant::QuantParams;
use crate::tapwise::{TapScaleMatrix, TapwiseScales};
use crate::winograd::PreparedWinogradConv;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use wino_nets::{Graph, GraphOp, Kernel, NodeShape};
use wino_tensor::{
    concat_channels_into, conv2d_direct, global_avg_pool, max_pool2d, relu_inplace,
    upsample_nearest_into, Tensor,
};
use wino_trace::{PhaseProbe, PhaseProfile};

/// Options of one graph preparation: batch size and synthesis seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphRunOptions {
    /// Batch size of every activation tensor.
    pub batch: usize,
    /// Base seed of the synthesized inputs and weights.
    pub seed: u64,
}

impl Default for GraphRunOptions {
    fn default() -> Self {
        Self { batch: 1, seed: 0 }
    }
}

/// How one conv node executes across repeated runs.
#[derive(Debug)]
enum ConvState {
    /// Direct reference convolution (validation mode).
    Direct,
    /// Float Winograd with the weight transformation cached at plan time.
    FloatWinograd(PreparedWinogradConv),
    /// Integer tap-wise Winograd; calibrated and prepared on the first run,
    /// then reused (`None` until then).
    IntWinograd(Mutex<Option<IntPrepared>>),
    /// Any other geometry: dispatched through the engine per run.
    Engine,
}

/// The cached integer pipeline of one node: the prepared layer plus the
/// input quantizer frozen at first-run calibration.
#[derive(Debug)]
struct IntPrepared {
    conv: IntWinogradConv,
    input: QuantParams,
}

/// Per-conv-node prepared state.
#[derive(Debug)]
struct PreparedConv {
    plan: LayerPlan,
    weights: Arc<Tensor<f32>>,
    /// Per-output-channel bias, synthesized at prepare time when the layer
    /// declares one; rides the fused epilogue's bias stage.
    bias: Option<Arc<Tensor<f32>>>,
    state: ConvState,
    /// The epilogue the planner fused into this conv: trailing ReLU,
    /// residual add operand, and (on the integer path) the output
    /// requantization — all applied before the kernel's single store.
    epilogue: EpiloguePlan,
    /// Per-phase profiling sink shared with the node's kernel state (the
    /// float prepared conv at plan time, the integer one at calibration);
    /// only written while `wino_trace::Detail::Full` is active.
    probe: Arc<PhaseProbe>,
}

impl PreparedConv {
    /// Whether this node's kernel will actually write the fused epilogue
    /// output into the residual's own buffer for a run at `batch` producing
    /// `shape`: only the Winograd tap-major paths can, and only when they
    /// will not fall back internally (the float small-tile per-tile path and
    /// the non-`i32`-exact integer path allocate their own output, which
    /// would silently drop a stolen buffer instead of recycling it).
    fn in_place_capable(
        &self,
        batch: usize,
        shape: wino_nets::NodeShape,
        quant: Option<WinogradQuantConfig>,
    ) -> bool {
        match &self.state {
            ConvState::FloatWinograd(prep) => {
                // Winograd nodes are stride-1 same-padded, so the output
                // shape equals the kernel's input shape.
                let (_, h, w) = shape;
                prep.uses_tap_major(batch, h, w)
            }
            ConvState::IntWinograd(_) => {
                let c_in = self.weights.dims()[1];
                quant.is_some_and(|cfg| IntWinogradConv::i32_exact_for(c_in, cfg.wino_bits))
            }
            _ => false,
        }
    }
}

/// A graph planned and weighted once, runnable many times.
///
/// Created by [`GraphExecutor::prepare`]; holds everything that does not
/// depend on the run's activations (plans, weights, float Winograd weight
/// transforms, synthesized inputs, the epilogue-fusion decisions) plus the
/// lazily-calibrated integer state.
#[derive(Debug)]
pub struct PreparedGraph {
    graph: Graph,
    shapes: Vec<NodeShape>,
    consumers: Vec<usize>,
    convs: Vec<Option<PreparedConv>>,
    inputs: Vec<Option<Arc<Tensor<f32>>>>,
    /// For every tail node (ReLU, residual add) a conv's fused epilogue
    /// already covers, the id of that conv; the executor passes such nodes
    /// through untouched.
    absorbed_into: Vec<Option<usize>>,
    batch: usize,
    /// One interned trace symbol per node (the node name), so the per-node
    /// executor spans cost no allocation or interning on the hot path.
    node_syms: Vec<wino_trace::Sym>,
}

impl PreparedGraph {
    /// The graph this state was prepared for.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The inferred `(C, H, W)` shape of every node.
    pub fn shapes(&self) -> &[NodeShape] {
        &self.shapes
    }

    /// The batch size the inputs were synthesized at.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The plan of the conv node with the given id, if it is one.
    pub fn plan_for(&self, id: usize) -> Option<&LayerPlan> {
        self.convs.get(id).and_then(|c| c.as_ref()).map(|c| &c.plan)
    }

    /// Total bytes of the synthesized weight tensors.
    pub fn weight_bytes(&self) -> usize {
        self.convs
            .iter()
            .flatten()
            .map(|c| c.weights.len() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Number of conv nodes running the integer tap-wise pipeline.
    pub fn int_conv_count(&self) -> usize {
        self.convs
            .iter()
            .flatten()
            .filter(|c| matches!(c.state, ConvState::IntWinograd(_)))
            .count()
    }

    /// The epilogue plan of the conv node with the given id, if it is one.
    pub fn epilogue_for(&self, id: usize) -> Option<&EpiloguePlan> {
        self.convs
            .get(id)
            .and_then(|c| c.as_ref())
            .map(|c| &c.epilogue)
    }

    /// How many conv nodes execute with a ReLU fused into their epilogue
    /// (pre- or post-residual).
    pub fn fused_relu_count(&self) -> usize {
        self.convs
            .iter()
            .flatten()
            .filter(|c| c.epilogue.has_relu())
            .count()
    }

    /// How many conv nodes read a residual operand in their epilogue (a
    /// fused `conv → add` tail).
    pub fn fused_residual_count(&self) -> usize {
        self.convs
            .iter()
            .flatten()
            .filter(|c| c.epilogue.residual.is_some())
            .count()
    }

    /// Total graph nodes elided by epilogue fusion: every ReLU and residual
    /// add that executes inside a conv's output transform instead of as its
    /// own pass over the activation.
    pub fn fused_node_count(&self) -> usize {
        self.absorbed_into.iter().flatten().count()
    }

    /// Bytes of pre-activation tensors that fusion prevents from ever being
    /// materialized, at the prepared batch size: each fused residual tail
    /// elides one full conv output (the separate-node execution writes the
    /// pre-activation map, reads it back in the add, and allocates the sum
    /// into a third buffer; the fused epilogue stores the finished value
    /// once). ReLU-only fusions elide a pass but no buffer (the separate
    /// ReLU runs in place) and therefore contribute nothing here — this
    /// figure is deliberately honest about *memory*, not traffic.
    pub fn elided_bytes(&self) -> usize {
        self.convs
            .iter()
            .enumerate()
            .filter_map(|(id, c)| {
                let pc = c.as_ref()?;
                pc.epilogue.residual?;
                let (ch, h, w) = self.shapes[id];
                Some(self.batch * ch * h * w * std::mem::size_of::<f32>())
            })
            .sum()
    }

    /// Peak per-worker bytes of tap-major Winograd scratch (`V` + `M` panels)
    /// any conv node of this graph uses, complementing the activation-arena
    /// peak for memory sizing. Zero when no node runs a Winograd kernel.
    pub fn scratch_bytes(&self) -> usize {
        self.graph
            .nodes()
            .iter()
            .enumerate()
            .filter_map(|(id, node)| {
                let pc = self.convs[id].as_ref()?;
                let tile_t = match &pc.state {
                    ConvState::FloatWinograd(prep) => prep.tile().input_tile(),
                    ConvState::IntWinograd(_) => match pc.plan.kernel {
                        Kernel::WinogradF2 => 4,
                        _ => 6,
                    },
                    _ => return None,
                };
                let (_, h, w) = self.shapes[id];
                let c_in = match &node.op {
                    GraphOp::Conv(layer) => layer.c_in,
                    _ => return None,
                };
                Some(crate::scratch::tap_scratch_bytes(
                    c_in,
                    pc.weights.dims()[0],
                    tile_t,
                    h,
                    w,
                ))
            })
            .max()
            .unwrap_or(0)
    }

    /// The name of the SIMD microkernel variant every GEMM and SoA transform
    /// of this graph executes with (`"scalar"`, `"avx2"`, `"avx512"` or
    /// `"neon"`) — resolved once per process by [`wino_tensor::simd::active`],
    /// including the `WINO_FORCE_KERNEL` override.
    pub fn simd_kernel(&self) -> &'static str {
        wino_tensor::simd::active().name()
    }

    /// Whether every integer conv node has frozen calibration state.
    ///
    /// A float or reference graph (no integer nodes) is trivially calibrated.
    /// A quantized graph becomes calibrated after its first run — or, for
    /// serving, after an explicit [`GraphExecutor::warmup`] /
    /// [`GraphExecutor::calibrate_with`] pass before workers start.
    pub fn is_calibrated(&self) -> bool {
        self.convs.iter().flatten().all(|c| match &c.state {
            ConvState::IntWinograd(cell) => cell.lock().expect("int state poisoned").is_some(),
            _ => true,
        })
    }

    /// Per-node, per-phase kernel timings accumulated since preparation (or
    /// the last [`PreparedGraph::reset_phase_profile`]), one row per conv
    /// node in graph order. Empty totals unless runs executed while
    /// `wino_trace::Detail::Full` was active — the probes cost one relaxed
    /// atomic load per strip group otherwise.
    pub fn phase_profile(&self) -> PhaseProfile {
        PhaseProfile {
            nodes: self
                .convs
                .iter()
                .flatten()
                .map(|c| c.probe.snapshot())
                .collect(),
        }
    }

    /// Zeroes every node's phase accumulators (a fresh measurement window).
    pub fn reset_phase_profile(&self) {
        for c in self.convs.iter().flatten() {
            c.probe.reset();
        }
    }
}

// The serving layer shares one prepared graph (and the executor that made
// it) across worker threads; keep the `Sync` promise honest at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreparedGraph>();
    assert_send_sync::<GraphExecutor>();
};

/// The outcome of executing one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeExecution {
    /// Node name.
    pub name: String,
    /// Operator kind (`"conv"`, `"add"`, …).
    pub kind: &'static str,
    /// The planned kernel (conv nodes only).
    pub kernel: Option<Kernel>,
    /// The path that actually executed (conv nodes only).
    pub backend: Option<&'static str>,
    /// NCHW dimensions of the produced activation.
    pub output_dims: Vec<usize>,
    /// Wall-clock seconds of the node.
    pub seconds: f64,
    /// Mean of the output (cheap integrity checksum).
    pub checksum: f32,
}

/// The outcome of one chained end-to-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphExecution {
    /// Graph name.
    pub graph: String,
    /// Per-node outcomes in topological order.
    pub nodes: Vec<NodeExecution>,
    /// Total wall-clock seconds across all nodes.
    pub total_seconds: f64,
    /// Peak bytes of simultaneously-live activation tensors (weights and
    /// cached prepared state excluded).
    pub peak_live_bytes: usize,
    /// Structural-node allocations served from recycled dead tensors.
    pub arena_reuse_hits: usize,
    /// Structural-node allocations that had to touch the system allocator.
    pub arena_fresh_allocs: usize,
    /// The tensors of the graph's output nodes, in node order.
    pub outputs: Vec<(String, Tensor<f32>)>,
}

impl GraphExecution {
    /// How many conv nodes ran with each kernel.
    pub fn kernel_histogram(&self) -> [(Kernel, usize); 3] {
        let mut counts = [0usize; 3];
        for n in &self.nodes {
            match n.kernel {
                Some(Kernel::Im2col) => counts[0] += 1,
                Some(Kernel::WinogradF2) => counts[1] += 1,
                Some(Kernel::WinogradF4) => counts[2] += 1,
                None => {}
            }
        }
        [
            (Kernel::Im2col, counts[0]),
            (Kernel::WinogradF2, counts[1]),
            (Kernel::WinogradF4, counts[2]),
        ]
    }

    /// The output tensor produced by the output node of the given name.
    pub fn output(&self, name: &str) -> Option<&Tensor<f32>> {
        self.outputs.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Seconds spent in conv nodes.
    pub fn conv_seconds(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| n.kind == "conv")
            .map(|n| n.seconds)
            .sum()
    }
}

/// Point-in-time counters of an [`ActivationArena`].
///
/// `peak_live_bytes` is the maximum across every run the arena has served;
/// `reuse_hits` / `fresh_allocs` accumulate across runs. The serving layer
/// (`wino_serve`) folds each worker's arena stats into its server report, and
/// the benches read them directly — no test-only hooks involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Runs this arena has backed.
    pub runs: usize,
    /// Maximum bytes of simultaneously-live activations over all runs.
    pub peak_live_bytes: usize,
    /// Allocations served from recycled dead tensors (cumulative).
    pub reuse_hits: usize,
    /// Allocations that touched the system allocator (cumulative).
    pub fresh_allocs: usize,
    /// Dead buffers currently parked for reuse.
    pub free_buffers: usize,
    /// Bytes of capacity parked in those buffers.
    pub free_bytes: usize,
}

/// The activation-buffer arena: dead tensors are recycled into later
/// structural nodes, and live bytes are tracked for the peak-memory report.
///
/// An arena can outlive a run: [`GraphExecutor::run_with_inputs_in`] lets a
/// long-lived worker thread keep one arena across requests, so steady-state
/// serving recycles the previous batch's buffers instead of touching the
/// allocator. Per-run counters reset at the start of each run; the
/// cumulative view is [`ActivationArena::stats`].
#[derive(Debug, Default)]
pub struct ActivationArena {
    free: Vec<Vec<f32>>,
    live_bytes: usize,
    peak_bytes: usize,
    reuse_hits: usize,
    fresh_allocs: usize,
    runs: usize,
    max_peak_bytes: usize,
    total_reuse_hits: usize,
    total_fresh_allocs: usize,
}

impl ActivationArena {
    /// An empty arena with no parked buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative counters across every run this arena has backed.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            runs: self.runs,
            peak_live_bytes: self.max_peak_bytes,
            reuse_hits: self.total_reuse_hits,
            fresh_allocs: self.total_fresh_allocs,
            free_buffers: self.free.len(),
            free_bytes: self
                .free
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<f32>())
                .sum(),
        }
    }

    /// Resets the per-run counters; parked buffers stay available.
    fn begin_run(&mut self) {
        self.live_bytes = 0;
        self.peak_bytes = 0;
        self.reuse_hits = 0;
        self.fresh_allocs = 0;
        self.runs += 1;
    }

    /// Folds the finished run's counters into the cumulative totals.
    fn end_run(&mut self) {
        self.max_peak_bytes = self.max_peak_bytes.max(self.peak_bytes);
        self.total_reuse_hits += self.reuse_hits;
        self.total_fresh_allocs += self.fresh_allocs;
    }
    /// A zeroed buffer of `len` floats, recycled if a dead tensor fits
    /// (for the `*_into` helpers, which require a full-length slice).
    fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.take_empty(len);
        buf.resize(len, 0.0);
        buf
    }

    /// An empty buffer with capacity for `len` floats, recycled if a dead
    /// tensor fits. Callers that rebuild the whole activation by `extend`
    /// use this to skip the zero-fill `take` would pay.
    fn take_empty(&mut self, len: usize) -> Vec<f32> {
        // Prefer the tightest-fitting parked buffer.
        let mut best: Option<usize> = None;
        for (i, b) in self.free.iter().enumerate() {
            if b.capacity() >= len
                && best.is_none_or(|j: usize| self.free[j].capacity() > b.capacity())
            {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                self.reuse_hits += 1;
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                buf
            }
            None => {
                self.fresh_allocs += 1;
                Vec::with_capacity(len)
            }
        }
    }

    /// Records a newly-live activation.
    fn track(&mut self, t: &Tensor<f32>) {
        self.live_bytes += t.len() * std::mem::size_of::<f32>();
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
    }

    /// Retires a dead activation, keeping its buffer for reuse.
    fn release(&mut self, t: Tensor<f32>) {
        self.live_bytes -= t.len() * std::mem::size_of::<f32>();
        self.free.push(t.into_vec());
    }

    /// Retires a dead activation that was moved out (e.g. an in-place ReLU):
    /// only the accounting changes hands, the buffer lives on in the result.
    fn transfer(&mut self, len: usize) {
        self.live_bytes -= len * std::mem::size_of::<f32>();
    }
}

/// Runs whole graphs through planned backends with chained activations.
#[derive(Debug)]
pub struct GraphExecutor {
    engine: Engine,
    planner: Planner,
    quant: Option<WinogradQuantConfig>,
    reference: bool,
    /// Which epilogue fusion classes the planner may apply.
    fusion: FusionClasses,
    /// Whether Winograd nodes run the legacy per-tile kernels (benchmarking).
    per_tile: bool,
    synth: SynthCache,
}

impl GraphExecutor {
    /// The default FP32 executor (direct / im2col / Winograd F2 / F4).
    pub fn with_defaults() -> Self {
        Self {
            engine: Engine::with_default_backends(),
            planner: Planner::default(),
            quant: None,
            reference: false,
            fusion: FusionClasses::all(),
            per_tile: false,
            synth: SynthCache::new(),
        }
    }

    /// A quantized executor: conv nodes planned onto `cfg.tile`'s kernel run
    /// the integer tap-wise pipeline with per-node cached prepared state.
    pub fn quantized(cfg: WinogradQuantConfig) -> Self {
        assert!(
            cfg.tile != TileSize::F6,
            "integer pipeline supports F2 and F4 only (F6 has non-integer B/A matrices)"
        );
        Self {
            engine: Engine::quantized(cfg),
            planner: Planner::default(),
            quant: Some(cfg),
            reference: false,
            fusion: FusionClasses::all(),
            per_tile: false,
            synth: SynthCache::new(),
        }
    }

    /// A ground-truth executor: every conv node runs the direct algorithm.
    pub fn reference() -> Self {
        Self {
            engine: Engine::with_default_backends(),
            planner: Planner::default(),
            quant: None,
            reference: true,
            fusion: FusionClasses::all(),
            per_tile: false,
            synth: SynthCache::new(),
        }
    }

    /// Disables **every** epilogue fusion class: every ReLU and residual add
    /// runs as its own node. Fused and unfused execution are bitwise
    /// identical (pinned by the integration tests); this switch exists to
    /// measure the fusion win and to A/B the planner's decision.
    pub fn without_fusion(self) -> Self {
        self.with_fusion(FusionClasses::none())
    }

    /// Selects which epilogue fusion classes the planner may apply — each
    /// class ([`FusionClasses::relu`], [`FusionClasses::residual`]) can be
    /// disabled independently for A/B measurement.
    pub fn with_fusion(mut self, classes: FusionClasses) -> Self {
        self.fusion = classes;
        self
    }

    /// The fusion classes this executor plans with.
    pub fn fusion(&self) -> FusionClasses {
        self.fusion
    }

    /// Reverts to the pre-tap-major execution: per-tile Winograd kernels and
    /// no epilogue fusion of any class. A benchmarking aid (`bench_dump`,
    /// the `graph_forward` criterion group) that quantifies the tap-major
    /// rewrite end to end; never the right choice for serving.
    pub fn legacy(mut self) -> Self {
        self.fusion = FusionClasses::none();
        self.per_tile = true;
        self
    }

    /// The engine backing this executor.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The planner backing this executor.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The tensor-synthesis cache backing this executor.
    pub fn synth(&self) -> &SynthCache {
        &self.synth
    }

    /// The Winograd kernel the integer pipeline realises, if quantized.
    fn int_kernel(&self) -> Option<Kernel> {
        self.quant.map(|cfg| match cfg.tile {
            TileSize::F2 => Kernel::WinogradF2,
            TileSize::F4 => Kernel::WinogradF4,
            TileSize::F6 => unreachable!("rejected in GraphExecutor::quantized"),
        })
    }

    /// Validates the graph, plans every conv node, synthesizes inputs and
    /// weights, and performs the one-time weight transformations.
    ///
    /// # Panics
    ///
    /// Panics if the graph does not [`Graph::validate`].
    pub fn prepare(&self, graph: &Graph, opts: &GraphRunOptions) -> PreparedGraph {
        let shapes = graph
            .validate()
            .unwrap_or_else(|e| panic!("invalid graph {}: {e}", graph.name));
        let consumers = graph.consumer_counts();
        let int_kernel = self.int_kernel();
        // Fusion decision: `conv → [add residual] → [relu]` chains collapse
        // into the conv's output epilogue; the absorbed tail nodes become
        // pass-throughs.
        let fusion = self.planner.fuse_epilogues(graph, self.fusion);
        let mut convs: Vec<Option<PreparedConv>> = Vec::with_capacity(graph.nodes().len());
        let mut inputs: Vec<Option<Arc<Tensor<f32>>>> = Vec::with_capacity(graph.nodes().len());
        for (id, node) in graph.nodes().iter().enumerate() {
            let node_seed = opts
                .seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(id as u64);
            inputs.push(match node.op {
                GraphOp::Input {
                    channels,
                    height,
                    width,
                } => Some(
                    self.synth
                        .normal(&[opts.batch, channels, height, width], node_seed),
                ),
                _ => None,
            });
            convs.push(match &node.op {
                GraphOp::Conv(layer) => {
                    let plan = self.planner.plan_layer(layer);
                    let weights = self.synth.kaiming(
                        &[layer.c_out, layer.c_in, layer.kernel, layer.kernel],
                        node_seed,
                    );
                    let probe = Arc::new(PhaseProbe::new(&node.name));
                    probe.set_trace_id(id as u64);
                    let winograd_eligible =
                        plan.params.is_winograd_eligible() && plan.params.padding == 1;
                    let state = if self.reference {
                        ConvState::Direct
                    } else if winograd_eligible && Some(plan.kernel) == int_kernel {
                        ConvState::IntWinograd(Mutex::new(None))
                    } else if winograd_eligible && plan.kernel.tile_m().is_some() {
                        let tile = match plan.kernel {
                            Kernel::WinogradF2 => TileSize::F2,
                            Kernel::WinogradF4 => TileSize::F4,
                            Kernel::Im2col => unreachable!("tile_m is Some"),
                        };
                        let mut prep = PreparedWinogradConv::prepare(&weights, tile);
                        prep.set_probe(Arc::clone(&probe));
                        ConvState::FloatWinograd(prep)
                    } else {
                        ConvState::Engine
                    };
                    let mut epilogue = fusion.plans[id].clone();
                    // The integer pipeline requantizes its output inside the
                    // same epilogue stage; record it so reports (and backend
                    // opt-ins) see the complete fused tail.
                    epilogue.requant = matches!(state, ConvState::IntWinograd(_));
                    let bias = layer
                        .bias
                        .then(|| self.synth.normal(&[layer.c_out], node_seed ^ 0x5bd1e995));
                    Some(PreparedConv {
                        plan,
                        weights,
                        bias,
                        state,
                        epilogue,
                        probe,
                    })
                }
                _ => None,
            });
        }
        let node_syms = graph
            .nodes()
            .iter()
            .map(|n| wino_trace::intern(&n.name))
            .collect();
        PreparedGraph {
            graph: graph.clone(),
            shapes,
            consumers,
            convs,
            inputs,
            absorbed_into: fusion.absorbed_into,
            batch: opts.batch,
            node_syms,
        }
    }

    /// Runs the prepared graph on its synthesized inputs.
    pub fn run(&self, prepared: &PreparedGraph) -> GraphExecution {
        self.run_impl(prepared, None, None, &mut ActivationArena::new())
    }

    /// Runs the prepared graph on caller-provided activations, one NCHW
    /// tensor per [`GraphOp::Input`] node in node order (the serving loop:
    /// prepare once, feed fresh batches).
    ///
    /// The inputs may carry any batch size (all must agree); the prepared
    /// state is batch-independent, so one [`PreparedGraph`] serves batch-1
    /// probes and coalesced batch-N runs alike.
    ///
    /// # Panics
    ///
    /// Panics if the tensor count or any per-image shape disagrees with the
    /// graph, or the inputs disagree on batch size.
    pub fn run_with_inputs(
        &self,
        prepared: &PreparedGraph,
        inputs: &[Tensor<f32>],
    ) -> GraphExecution {
        self.run_impl(prepared, Some(inputs), None, &mut ActivationArena::new())
    }

    /// Calibrates every integer conv node on the graph's synthesized inputs
    /// and returns the warmup run's report.
    ///
    /// The tap-wise pipeline freezes its input quantizer and tap scales from
    /// the **first** activations each node sees (first-batch-only
    /// calibration — there are no running statistics; see the paper's §IV-B
    /// static calibration). Under a multi-threaded server that would make
    /// the frozen scales depend on whichever live request won the race, so
    /// serving code must calibrate on a designated warmup batch *before*
    /// workers start (the `wino_serve` server does this automatically).
    /// After it returns, [`PreparedGraph::is_calibrated`] is `true` and
    /// later runs never mutate the prepared state.
    ///
    /// Float and reference graphs have nothing to calibrate; the call is
    /// then just a synthesized-input run.
    pub fn warmup(&self, prepared: &PreparedGraph) -> GraphExecution {
        let run = self.run(prepared);
        debug_assert!(prepared.is_calibrated(), "warmup left nodes uncalibrated");
        run
    }

    /// [`GraphExecutor::warmup`] on caller-provided activations: freezes the
    /// integer calibration from a representative batch of the caller's
    /// choosing (one NCHW tensor per input node, any batch size).
    ///
    /// # Panics
    ///
    /// Panics if the tensor count or any per-image shape disagrees with the
    /// graph (see [`GraphExecutor::run_with_inputs`]).
    pub fn calibrate_with(
        &self,
        prepared: &PreparedGraph,
        inputs: &[Tensor<f32>],
    ) -> GraphExecution {
        let run = self.run_with_inputs(prepared, inputs);
        debug_assert!(prepared.is_calibrated(), "warmup left nodes uncalibrated");
        run
    }

    /// [`GraphExecutor::run_with_inputs`] backed by a caller-owned arena.
    ///
    /// A worker thread that keeps one [`ActivationArena`] across requests
    /// recycles the previous batch's buffers instead of allocating afresh;
    /// [`ActivationArena::stats`] reports the cumulative effect.
    pub fn run_with_inputs_in(
        &self,
        prepared: &PreparedGraph,
        inputs: &[Tensor<f32>],
        arena: &mut ActivationArena,
    ) -> GraphExecution {
        self.run_impl(prepared, Some(inputs), None, arena)
    }

    /// Creates a [`RunningCalibration`] for the prepared graph: one range
    /// tracker per integer conv node whose calibration is still open. A
    /// float or reference executor (or an already-warmed graph) yields a
    /// [`crate::CalibrationState::Static`] calibrator with nothing to do.
    ///
    /// Feed it observation batches through [`GraphExecutor::observe_with`];
    /// once the [`CalibrationPolicy`] freezes, the integer state is built
    /// from the running statistics instead of first-batch maxima.
    pub fn running_calibration(
        &self,
        prepared: &PreparedGraph,
        policy: CalibrationPolicy,
    ) -> RunningCalibration {
        let nodes: Vec<(usize, Arc<Tensor<f32>>)> = prepared
            .convs
            .iter()
            .enumerate()
            .filter_map(|(id, c)| {
                let pc = c.as_ref()?;
                match &pc.state {
                    ConvState::IntWinograd(cell)
                        if cell.lock().expect("int state poisoned").is_none() =>
                    {
                        Some((id, Arc::clone(&pc.weights)))
                    }
                    _ => None,
                }
            })
            .collect();
        RunningCalibration::from_nodes(policy, self.quant, nodes)
    }

    /// Runs one batch under running-statistics calibration.
    ///
    /// While `cal` is warming, integer conv nodes execute as direct FP32
    /// convolutions (their fused epilogues still apply) and every batch's
    /// activation ranges fold into the per-node EMAs. When the
    /// [`CalibrationPolicy`] freeze criterion fires, the converged statistics
    /// are compiled into each node's [`IntWinogradConv`] and installed into
    /// the prepared graph before the call returns. Once `cal` is frozen
    /// (or static) this is exactly [`GraphExecutor::run_with_inputs`] — the
    /// recalibration guard: served outputs are bitwise reproducible from the
    /// freeze on, no matter what later batches look like.
    pub fn observe_with(
        &self,
        prepared: &PreparedGraph,
        inputs: &[Tensor<f32>],
        cal: &RunningCalibration,
    ) -> GraphExecution {
        self.observe_with_in(prepared, inputs, cal, &mut ActivationArena::new())
    }

    /// [`GraphExecutor::observe_with`] backed by a caller-owned arena (the
    /// serving worker loop keeps one arena across requests either way).
    ///
    /// The observe-or-run decision is made **once per call**: a batch that
    /// enters while the calibrator is warming runs every integer node on the
    /// FP32 observation path even if a concurrent worker freezes the
    /// calibrator mid-run, so no reply ever mixes FP32 and integer layers.
    pub fn observe_with_in(
        &self,
        prepared: &PreparedGraph,
        inputs: &[Tensor<f32>],
        cal: &RunningCalibration,
        arena: &mut ActivationArena,
    ) -> GraphExecution {
        if !cal.observing() {
            return self.run_impl(prepared, Some(inputs), None, arena);
        }
        let run = self.run_impl(prepared, Some(inputs), Some(cal), arena);
        if cal.finish_batch() {
            // Install first, then flip the public state: a concurrent run
            // that sees "frozen" must find every integer node prepared. A
            // failed install degrades the model instead of poisoning it: the
            // calibrator pins itself to the exact-FP32 observe path forever
            // (CalibrationState::Degraded) and replies keep flowing.
            match self.install_frozen(prepared, cal) {
                Ok(()) => {
                    cal.mark_frozen();
                    debug_assert!(prepared.is_calibrated(), "freeze left nodes open");
                }
                Err(_why) => {
                    cal.mark_degraded();
                    wino_trace::counter("cal.freeze_failures").inc();
                }
            }
        }
        run
    }

    /// Compiles the calibrator's converged running statistics into each
    /// tracked node's integer state — the same construction as first-run
    /// calibration, with EMA maxima in place of single-batch maxima.
    ///
    /// Fallible: a panic inside integer prepare (degenerate ranges, injected
    /// via the `cal.freeze` fault point in chaos tests) is caught and turned
    /// into an error so the caller can degrade the model instead of killing
    /// the worker. On error some nodes may already be installed; that is
    /// harmless, because a degraded calibrator keeps `observing()` true and
    /// the observe path never consults the installed integer state.
    fn install_frozen(
        &self,
        prepared: &PreparedGraph,
        cal: &RunningCalibration,
    ) -> Result<(), String> {
        if wino_fault::fire("cal.freeze") {
            return Err("injected calibration-freeze fault".to_string());
        }
        let cfg = cal
            .quant_config()
            .expect("freeze fired on a non-quantized calibrator");
        for fr in cal.frozen_ranges() {
            let pc = prepared.convs[fr.node]
                .as_ref()
                .expect("tracked node is a conv");
            let ConvState::IntWinograd(cell) = &pc.state else {
                unreachable!("tracked node lost its integer state");
            };
            let prepare = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let scales = TapwiseScales {
                    input: TapScaleMatrix::from_max_matrix(&fr.input_taps, cfg.wino_bits, cfg.mode),
                    weight: TapScaleMatrix::from_max_matrix(
                        &fr.weight_taps,
                        cfg.wino_bits,
                        cfg.mode,
                    ),
                };
                let input = QuantParams::from_max(fr.input_max, cfg.spatial_bits).to_power_of_two();
                let conv =
                    IntWinogradConv::prepare(&fr.weights, &scales, input, fr.output_max, cfg);
                (conv, input)
            }));
            let (mut conv, input) = match prepare {
                Ok(built) => built,
                Err(_) => return Err(format!("integer prepare panicked for node {}", fr.node)),
            };
            conv.set_probe(Arc::clone(&pc.probe));
            *cell.lock().expect("int state poisoned") = Some(IntPrepared { conv, input });
        }
        Ok(())
    }

    fn run_impl(
        &self,
        prepared: &PreparedGraph,
        inputs: Option<&[Tensor<f32>]>,
        observer: Option<&RunningCalibration>,
        arena: &mut ActivationArena,
    ) -> GraphExecution {
        let graph = &prepared.graph;
        let n_nodes = graph.nodes().len();
        let batch = match inputs {
            Some(ins) => {
                assert_eq!(
                    ins.len(),
                    graph.input_ids().len(),
                    "run_with_inputs: graph {} expects {} input tensor(s)",
                    graph.name,
                    graph.input_ids().len()
                );
                let b = ins.first().map_or(prepared.batch, |t| t.dims()[0]);
                assert!(b > 0, "run_with_inputs: empty batch");
                b
            }
            None => prepared.batch,
        };
        let mut next_input = 0usize;
        let mut values: Vec<Option<Tensor<f32>>> = (0..n_nodes).map(|_| None).collect();
        let mut refs = prepared.consumers.clone();
        arena.begin_run();
        let mut nodes = Vec::with_capacity(n_nodes);
        let mut total = 0.0;
        let mut outputs = Vec::new();

        for (id, node) in graph.nodes().iter().enumerate() {
            // One executor span per node (dead unless tracing is on — the
            // constructor is a single relaxed load).
            let _node_sp = wino_trace::span(
                prepared.node_syms[id],
                wino_trace::Category::Node,
                id as u64,
            );
            let start = Instant::now();
            let mut kernel = None;
            let mut backend = None;
            let out: Tensor<f32> = match &node.op {
                GraphOp::Input { .. } => {
                    let t = match inputs {
                        Some(ins) => {
                            let t = &ins[next_input];
                            let (c, h, w) = prepared.shapes[id];
                            assert_eq!(
                                t.dims(),
                                &[batch, c, h, w],
                                "run_with_inputs: input {:?} has the wrong shape",
                                node.name
                            );
                            t.clone()
                        }
                        None => prepared.inputs[id]
                            .as_ref()
                            .expect("input synthesized at prepare")
                            .as_ref()
                            .clone(),
                    };
                    next_input += 1;
                    t
                }
                GraphOp::Conv(_) => {
                    let pc = prepared.convs[id].as_ref().expect("conv prepared");
                    kernel = Some(pc.plan.kernel);
                    // In-place accumulation: when the elided add was the
                    // residual's last consumer and the kernel can write its
                    // fused output into that buffer, steal the tensor — the
                    // tail then allocates nothing at all.
                    // Observation runs route integer nodes through the FP32
                    // direct path, which cannot consume a stolen buffer —
                    // keep every residual operand borrowed while observing.
                    let steal = pc.epilogue.in_place
                        && !self.per_tile
                        && observer.is_none()
                        && pc.in_place_capable(batch, prepared.shapes[id], self.quant);
                    let owned = if steal {
                        let rid = pc.epilogue.residual.expect("in_place implies residual");
                        debug_assert_eq!(refs[rid], 1, "in-place residual still has readers");
                        refs[rid] = 0;
                        let t = values[rid].take().expect("residual producer ran");
                        arena.transfer(t.len());
                        Some(t)
                    } else {
                        None
                    };
                    let x = values[node.inputs[0]].as_ref().expect("producer ran");
                    // A borrowed residual operand is resolved to its live
                    // arena tensor here — the planner guaranteed it was
                    // produced before this conv runs, and its refcount (held
                    // by the elided add node) keeps it alive until then.
                    let residual = if owned.is_some() {
                        None
                    } else {
                        pc.epilogue
                            .residual
                            .map(|rid| values[rid].as_ref().expect("residual producer ran"))
                    };
                    let (y, b) = self.run_conv(id, pc, x, residual, owned, observer);
                    backend = Some(b);
                    y
                }
                GraphOp::Relu | GraphOp::Add if prepared.absorbed_into[id].is_some() => {
                    // Already applied inside the producing conv's fused
                    // epilogue: pass the tensor through untouched. For an
                    // absorbed add, the flowing operand is the conv's output
                    // (possibly via its absorbed ReLU); the residual operand
                    // is retired by the normal last-consumer accounting
                    // below, exactly where the separate add would have
                    // retired it.
                    let conv_id = prepared.absorbed_into[id].expect("absorbed");
                    let src = node
                        .inputs
                        .iter()
                        .copied()
                        .find(|&i| i == conv_id || prepared.absorbed_into[i] == Some(conv_id))
                        .expect("fused tail has a flowing operand");
                    backend = Some("fused");
                    refs[src] = 0;
                    let t = values[src].take().expect("producer ran");
                    arena.transfer(t.len());
                    t
                }
                GraphOp::Relu => {
                    let src = node.inputs[0];
                    if refs[src] == 1 {
                        // Sole consumer: steal the tensor and rectify in
                        // place — no allocation, no copy.
                        refs[src] = 0;
                        let mut t = values[src].take().expect("producer ran");
                        arena.transfer(t.len());
                        relu_inplace(&mut t);
                        t
                    } else {
                        let x = values[src].as_ref().expect("producer ran");
                        let mut buf = arena.take_empty(x.len());
                        buf.extend(x.as_slice().iter().map(|&s| s.max(0.0)));
                        Tensor::from_vec(buf, x.dims()).expect("relu shape")
                    }
                }
                GraphOp::Add => {
                    let first = values[node.inputs[0]].as_ref().expect("producer ran");
                    let mut buf = arena.take_empty(first.len());
                    buf.extend_from_slice(first.as_slice());
                    for &i in &node.inputs[1..] {
                        let t = values[i].as_ref().expect("producer ran");
                        for (d, &s) in buf.iter_mut().zip(t.as_slice()) {
                            *d += s;
                        }
                    }
                    Tensor::from_vec(buf, first.dims()).expect("add shape")
                }
                GraphOp::Concat => {
                    let parts: Vec<&Tensor<f32>> = node
                        .inputs
                        .iter()
                        .map(|&i| values[i].as_ref().expect("producer ran"))
                        .collect();
                    let (c, h, w) = prepared.shapes[id];
                    let mut buf = arena.take(batch * c * h * w);
                    concat_channels_into(&parts, &mut buf);
                    Tensor::from_vec(buf, &[batch, c, h, w]).expect("concat shape")
                }
                GraphOp::MaxPool {
                    kernel: k,
                    stride,
                    padding,
                } => {
                    let x = values[node.inputs[0]].as_ref().expect("producer ran");
                    max_pool2d(x, *k, *stride, *padding)
                }
                GraphOp::Upsample { factor } => {
                    let x = values[node.inputs[0]].as_ref().expect("producer ran");
                    let (n_b, c) = (x.dims()[0], x.dims()[1]);
                    let (ho, wo) = (x.dims()[2] * factor, x.dims()[3] * factor);
                    let mut buf = arena.take(n_b * c * ho * wo);
                    upsample_nearest_into(x, *factor, &mut buf);
                    Tensor::from_vec(buf, &[n_b, c, ho, wo]).expect("upsample shape")
                }
                GraphOp::GlobalAvgPool => {
                    let x = values[node.inputs[0]].as_ref().expect("producer ran");
                    global_avg_pool(x)
                }
                GraphOp::Output => {
                    let src = node.inputs[0];
                    if refs[src] == 1 {
                        refs[src] = 0;
                        let t = values[src].take().expect("producer ran");
                        arena.transfer(t.len());
                        t
                    } else {
                        values[src].as_ref().expect("producer ran").clone()
                    }
                }
            };
            let seconds = start.elapsed().as_secs_f64();
            total += seconds;
            arena.track(&out);
            nodes.push(NodeExecution {
                name: node.name.clone(),
                kind: node.op.kind(),
                kernel,
                backend,
                output_dims: out.dims().to_vec(),
                seconds,
                checksum: out.mean(),
            });
            // Retire inputs whose last consumer just ran.
            for &i in &node.inputs {
                if refs[i] > 0 {
                    refs[i] -= 1;
                    if refs[i] == 0 {
                        if let Some(t) = values[i].take() {
                            arena.release(t);
                        }
                    }
                }
            }
            values[id] = Some(out);
        }

        for &id in &graph.output_ids() {
            let t = values[id].take().expect("output node ran");
            outputs.push((graph.nodes()[id].name.clone(), t));
        }

        arena.end_run();
        GraphExecution {
            graph: graph.name.clone(),
            nodes,
            total_seconds: total,
            peak_live_bytes: arena.peak_bytes,
            arena_reuse_hits: arena.reuse_hits,
            arena_fresh_allocs: arena.fresh_allocs,
            outputs,
        }
    }

    /// Executes one conv node through its prepared state, applying the
    /// fused [`EpilogueOps`] tail (trailing ReLU, residual add, and on the
    /// integer path the output requantization) the planner absorbed into it.
    /// `owned_residual` carries the stolen residual buffer when the run loop
    /// decided on in-place accumulation; it is `Some` only for Winograd
    /// states outside legacy mode.
    fn run_conv(
        &self,
        id: usize,
        pc: &PreparedConv,
        x: &Tensor<f32>,
        residual: Option<&Tensor<f32>>,
        owned_residual: Option<Tensor<f32>>,
        observer: Option<&RunningCalibration>,
    ) -> (Tensor<f32>, &'static str) {
        let params = pc.plan.params;
        let epi = &pc.epilogue;
        let ops = EpilogueOps {
            bias: pc.bias.as_deref(),
            residual,
            pre_add_relu: epi.pre_add_activation == Activation::Relu,
            relu: epi.activation == Activation::Relu,
        };
        match &pc.state {
            ConvState::Direct => {
                debug_assert!(owned_residual.is_none());
                let mut y = conv2d_direct(x, &pc.weights, None, params);
                apply_epilogue(&mut y, &ops);
                (y, "direct")
            }
            ConvState::FloatWinograd(prep) => {
                let name = match prep.tile() {
                    TileSize::F2 => "winograd-f2",
                    TileSize::F4 => "winograd-f4",
                    TileSize::F6 => "winograd-f6",
                };
                if self.per_tile {
                    // Legacy benchmarking mode. A `legacy()` executor plans
                    // without fusion, but the prepared graph may come from a
                    // fusing executor — honour its fused epilogue either way.
                    let mut y = prep.forward_per_tile(x);
                    apply_epilogue(&mut y, &ops);
                    (y, name)
                } else if let Some(t) = owned_residual {
                    (
                        prep.forward_with_epilogue_into(x, ops.bias, ops.pre_add_relu, ops.relu, t),
                        name,
                    )
                } else {
                    (prep.forward_with_epilogue(x, &ops), name)
                }
            }
            ConvState::IntWinograd(cell) => {
                if let Some(cal) = observer {
                    // Warming under running-statistics calibration: fold this
                    // batch's ranges into the node's EMAs and serve the exact
                    // FP32 answer — nothing quantizes against scales that
                    // are still converging. The decision to observe was
                    // snapshotted when the run started: even if a concurrent
                    // run freezes the calibrator mid-flight, this batch
                    // finishes on the FP32 path rather than mixing backends
                    // (the guard in `observe_node` discards its late folds).
                    debug_assert!(owned_residual.is_none(), "steal disabled while observing");
                    cal.observe_node(id, x);
                    let mut y = conv2d_direct(x, &pc.weights, None, params);
                    apply_epilogue(&mut y, &ops);
                    return (y, "observe-direct");
                }
                let cfg = self.quant.expect("int state implies quant config");
                let mut guard = cell.lock().expect("int state poisoned");
                let st = guard.get_or_insert_with(|| {
                    // First-run calibration: tap-wise scales and the input
                    // quantizer are frozen from the live activations, the
                    // weight transform + quantization runs once. The fused
                    // epilogue changes nothing here: calibration reads only
                    // the conv's *input* and weights, which are identical
                    // under fused and separate execution.
                    let mats = WinogradMatrices::for_tile(cfg.tile);
                    let scales =
                        TapwiseScales::calibrate(&pc.weights, x, &mats, cfg.wino_bits, cfg.mode);
                    let input =
                        QuantParams::from_max(x.abs_max(), cfg.spatial_bits).to_power_of_two();
                    // A fused bias rides the requant stage, so the output
                    // quantizer must cover conv + bias; widening by the
                    // worst-case |bias| keeps the estimate conservative.
                    let output_max = estimate_output_max(x, &pc.weights)
                        + ops.bias.map_or(0.0, wino_tensor::Tensor::abs_max);
                    let mut conv =
                        IntWinogradConv::prepare(&pc.weights, &scales, input, output_max, cfg);
                    conv.set_probe(Arc::clone(&pc.probe));
                    IntPrepared { conv, input }
                });
                let xq = crate::quant::quantize_to_i8(x, st.input);
                let y = if self.per_tile {
                    // As on the float path: honour the fused epilogue baked
                    // into the prepared graph even in legacy mode, as
                    // separate passes over the dequantized output (bitwise
                    // identical: `max(0, c)·s == max(0, c·s)` for s > 0).
                    let mut y = st.conv.forward_per_tile(&xq).dequantize();
                    apply_epilogue(&mut y, &ops);
                    y
                } else if let Some(t) = owned_residual {
                    st.conv
                        .forward_epilogue_into(&xq, ops.bias, ops.pre_add_relu, ops.relu, t)
                } else {
                    // Bias, requant, residual and ReLUs all fuse into the
                    // scatter stage; the int8 pre-activation map never
                    // exists (bias-free no-residual tails take the same
                    // staged path and stay bitwise-pinned to the separate
                    // `forward_fused + dequantize + apply_epilogue` chain).
                    st.conv.forward_epilogue(&xq, &ops)
                };
                (y, "int-winograd-tapwise")
            }
            ConvState::Engine => {
                debug_assert!(owned_residual.is_none());
                let backend = self
                    .engine
                    .backend_for(pc.plan.kernel, params)
                    .or_else(|| self.engine.backend_for(Kernel::Im2col, params))
                    .expect("engine has no backend for this node");
                let y = backend.conv2d_epilogue(x, &pc.weights, params, &ops);
                (y, backend.name())
            }
        }
    }
}

// Correctness against the direct reference, prepare-once counting, and the
// int error bound live in `tests/graph_inference.rs` (the whole-workspace
// integration suite); the unit tests here cover the executor mechanics that
// suite does not: arena accounting, determinism, and input validation.
#[cfg(test)]
mod tests {
    use super::*;
    use wino_nets::resnet20_graph;

    fn small_resnet20() -> Graph {
        resnet20_graph().with_channel_div(4)
    }

    #[test]
    fn arena_reuses_dead_tensors_and_tracks_peak() {
        let exec = GraphExecutor::with_defaults();
        let run = exec.run(&exec.prepare(&small_resnet20(), &GraphRunOptions::default()));
        assert!(run.arena_reuse_hits > 0, "no buffer was recycled");
        assert!(run.peak_live_bytes > 0);
        // Peak live memory must be far below the sum of all activations.
        let sum: usize = run
            .nodes
            .iter()
            .map(|n| n.output_dims.iter().product::<usize>() * 4)
            .sum();
        assert!(
            run.peak_live_bytes < sum / 2,
            "peak {} vs total {sum}",
            run.peak_live_bytes
        );
    }

    #[test]
    fn prepared_inputs_are_deterministic() {
        let exec = GraphExecutor::with_defaults();
        let p = exec.prepare(&small_resnet20(), &GraphRunOptions::default());
        let a = exec.run(&p);
        let b = exec.run(&p);
        assert_eq!(a.outputs[0].1, b.outputs[0].1, "repeated runs must agree");
    }

    #[test]
    fn run_with_inputs_feeds_fresh_batches() {
        let graph = small_resnet20();
        let exec = GraphExecutor::with_defaults();
        let p = exec.prepare(&graph, &GraphRunOptions::default());
        let x = wino_tensor::normal(&[1, 1, 32, 32], 0.0, 1.0, 99);
        let run = exec.run_with_inputs(&p, std::slice::from_ref(&x));
        assert_eq!(run.outputs.len(), 1);
        assert!(run.outputs[0].1.abs_max().is_finite());
    }

    #[test]
    #[should_panic(expected = "wrong shape")]
    fn run_with_inputs_rejects_bad_shapes() {
        let exec = GraphExecutor::with_defaults();
        let p = exec.prepare(&small_resnet20(), &GraphRunOptions::default());
        let x = wino_tensor::normal(&[1, 2, 32, 32], 0.0, 1.0, 99);
        let _ = exec.run_with_inputs(&p, std::slice::from_ref(&x));
    }

    #[test]
    fn run_with_inputs_accepts_any_batch_size() {
        // One prepared graph (prepared at batch 1) serves batch-3 runs, and
        // the batched run equals the per-image runs stacked — the invariant
        // the dynamic batcher's coalescing correctness rests on.
        let graph = small_resnet20();
        let exec = GraphExecutor::with_defaults();
        let p = exec.prepare(&graph, &GraphRunOptions::default());
        let xs: Vec<_> = (0..3)
            .map(|i| wino_tensor::normal(&[1, 1, 32, 32], 0.0, 1.0, 40 + i))
            .collect();
        let stacked = wino_tensor::concat_batch(&xs.iter().collect::<Vec<_>>());
        let batched = exec.run_with_inputs(&p, std::slice::from_ref(&stacked));
        assert_eq!(batched.outputs[0].1.dims()[0], 3);
        for (i, x) in xs.iter().enumerate() {
            let single = exec.run_with_inputs(&p, std::slice::from_ref(x));
            let got = wino_tensor::batch_slice(&batched.outputs[0].1, i, 1);
            let err = got.relative_error(&single.outputs[0].1);
            assert!(err < 1e-5, "image {i} drifted under batching: {err}");
        }
    }

    #[test]
    fn persistent_arena_recycles_across_runs() {
        let graph = small_resnet20();
        let exec = GraphExecutor::with_defaults();
        let p = exec.prepare(&graph, &GraphRunOptions::default());
        let x = wino_tensor::normal(&[1, 1, 32, 32], 0.0, 1.0, 7);
        let mut arena = ActivationArena::new();
        let first = exec.run_with_inputs_in(&p, std::slice::from_ref(&x), &mut arena);
        let second = exec.run_with_inputs_in(&p, std::slice::from_ref(&x), &mut arena);
        assert_eq!(first.outputs[0].1, second.outputs[0].1);
        // Run 2 starts with run 1's retired buffers parked, so it can only
        // recycle more (and allocate less) than the cold first run did.
        assert!(second.arena_fresh_allocs <= first.arena_fresh_allocs);
        assert!(second.arena_reuse_hits >= first.arena_reuse_hits);
        assert!(second.arena_reuse_hits > 0, "nothing was recycled");
        let stats = arena.stats();
        assert_eq!(stats.runs, 2);
        assert_eq!(
            stats.fresh_allocs,
            first.arena_fresh_allocs + second.arena_fresh_allocs
        );
        assert_eq!(
            stats.peak_live_bytes,
            first.peak_live_bytes.max(second.peak_live_bytes)
        );
        assert!(stats.free_buffers > 0 && stats.free_bytes > 0);
    }

    /// A residual tail whose convs both declare a per-channel bias. At 8×8 /
    /// F4 the tail conv has 4 tiles and 8 output channels, so the fused
    /// epilogue (bias → residual → store) runs on the channel-laned thin
    /// path, and the in-place residual steal carries the bias too.
    fn biased_residual_graph(bias: bool) -> Graph {
        use wino_nets::{ConvLayer, GraphBuilder};
        let with = |l: ConvLayer| if bias { l.with_bias() } else { l };
        let mut g = GraphBuilder::new("biased", 8);
        let x = g.input("in", 8, 8, 8);
        let c1 = g.conv_relu(with(ConvLayer::conv3x3("c1", 8, 8, 8)), x);
        let c2 = g.conv(with(ConvLayer::conv3x3("c2", 8, 8, 8)), c1);
        let a = g.add("res", vec![c2, x]);
        g.output("out", a);
        g.finish()
    }

    #[test]
    fn biased_graph_matches_reference_and_is_not_a_noop() {
        let graph = biased_residual_graph(true);
        let opts = GraphRunOptions::default();
        let exec = GraphExecutor::with_defaults();
        let p = exec.prepare(&graph, &opts);
        // Node ids: input 0, c1 conv 1, c1.relu 2, c2 conv 3, add 4.
        assert!(p.epilogue_for(1).is_some_and(|e| e.bias), "plan lost bias");
        assert!(p.epilogue_for(3).is_some_and(|e| e.bias), "plan lost bias");
        let run = exec.run(&p);
        let rexec = GraphExecutor::reference();
        let rrun = rexec.run(&rexec.prepare(&graph, &opts));
        let err = run.outputs[0].1.relative_error(&rrun.outputs[0].1);
        assert!(err < 1e-4, "biased graph drifted from reference: {err}");
        // The bias must actually reach the output: an unbiased twin differs.
        let unbiased = exec.run(&exec.prepare(&biased_residual_graph(false), &opts));
        assert_ne!(
            run.outputs[0].1, unbiased.outputs[0].1,
            "bias was silently dropped"
        );
    }

    #[test]
    fn quantized_executor_runs_biased_winograd_convs_through_the_int_epilogue() {
        use crate::int_winograd::WinogradQuantConfig;
        let graph = biased_residual_graph(true);
        let opts = GraphRunOptions::default();
        let exec = GraphExecutor::quantized(WinogradQuantConfig::default());
        let p = exec.prepare(&graph, &opts);
        let run = exec.run(&p);
        assert!(
            run.outputs[0].0.contains("add") || !run.outputs[0].0.is_empty(),
            "graph produced no output"
        );
        // The biased convs must actually run quantized, not fall back.
        for id in [1usize, 3] {
            assert!(
                p.epilogue_for(id).is_some_and(|e| e.bias && e.requant),
                "conv {id} lost its bias or its int requant tail"
            );
        }
        // Int-biased output tracks the float-biased reference within the
        // quantization error bound already accepted for unbiased nets.
        let fexec = GraphExecutor::with_defaults();
        let frun = fexec.run(&fexec.prepare(&graph, &opts));
        let err = run.outputs[0].1.relative_error(&frun.outputs[0].1);
        assert!(err < 0.25, "biased int graph drifted from float: {err}");
        // The bias must reach the quantized output too.
        let unbiased = exec.run(&exec.prepare(&biased_residual_graph(false), &opts));
        assert_ne!(
            run.outputs[0].1, unbiased.outputs[0].1,
            "bias was silently dropped on the int path"
        );
    }

    #[test]
    fn warmup_calibrates_every_int_node_once() {
        use crate::int_winograd::WinogradQuantConfig;
        let graph = small_resnet20();
        let exec = GraphExecutor::quantized(WinogradQuantConfig::default());
        let p = exec.prepare(&graph, &GraphRunOptions::default());
        assert!(p.int_conv_count() > 0, "no integer nodes to calibrate");
        assert!(!p.is_calibrated(), "calibration must be lazy");
        exec.warmup(&p);
        assert!(p.is_calibrated());
        // A float executor's graph is trivially calibrated.
        let fexec = GraphExecutor::with_defaults();
        let fp = fexec.prepare(&graph, &GraphRunOptions::default());
        assert_eq!(fp.int_conv_count(), 0);
        assert!(fp.is_calibrated());
    }

    #[test]
    fn calibrate_with_freezes_scales_from_the_given_batch() {
        use crate::int_winograd::WinogradQuantConfig;
        let graph = small_resnet20();
        let exec = GraphExecutor::quantized(WinogradQuantConfig::default());
        let p = exec.prepare(&graph, &GraphRunOptions::default());
        let warm = wino_tensor::normal(&[1, 1, 32, 32], 0.0, 1.0, 11);
        exec.calibrate_with(&p, std::slice::from_ref(&warm));
        assert!(p.is_calibrated());
        // Calibration is first-batch-only: a later, larger-amplitude batch
        // must not change the frozen state, so re-running the warmup batch
        // reproduces its output bit for bit.
        let a = exec.run_with_inputs(&p, std::slice::from_ref(&warm));
        let loud = wino_tensor::normal(&[1, 1, 32, 32], 0.0, 8.0, 12);
        let _ = exec.run_with_inputs(&p, std::slice::from_ref(&loud));
        let b = exec.run_with_inputs(&p, std::slice::from_ref(&warm));
        assert_eq!(a.outputs[0].1, b.outputs[0].1, "frozen state drifted");
    }
}
