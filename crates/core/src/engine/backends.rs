//! The built-in [`ConvBackend`] implementations.
//!
//! Five paths share the engine contract: the direct reference, im2col + GEMM
//! (the accelerator's baseline kernel), float Winograd F2 and F4, and the
//! integer tap-wise Winograd pipeline of the paper. All of them run on the
//! same NCHW/OIHW tensors, so they can be swapped per layer by the
//! [`crate::engine::Planner`] and cross-checked against each other in tests.

use crate::engine::ConvBackend;
use crate::epilogue::{add_bias, EpilogueOps};
use crate::int_winograd::{IntWinogradConv, WinogradQuantConfig};
use crate::matrices::{TileSize, WinogradMatrices};
use crate::quant::QuantParams;
use crate::tapwise::TapwiseScales;
use crate::winograd::PreparedWinogradConv;
use wino_nets::Kernel;
use wino_tensor::{conv2d_direct, conv2d_im2col, ConvParams, Tensor};

/// The naive direct convolution — the ground truth every other backend is
/// validated against. Never chosen by the planner.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectBackend;

impl ConvBackend for DirectBackend {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn kernel(&self) -> Option<Kernel> {
        None
    }

    fn supports(&self, _params: ConvParams) -> bool {
        true
    }

    fn conv2d(
        &self,
        x: &Tensor<f32>,
        w: &Tensor<f32>,
        bias: Option<&Tensor<f32>>,
        params: ConvParams,
    ) -> Tensor<f32> {
        conv2d_direct(x, w, bias, params)
    }
}

/// im2col lowering + blocked GEMM — the accelerator's baseline kernel and the
/// engine's universal fallback.
#[derive(Debug, Clone, Copy, Default)]
pub struct Im2colGemmBackend;

impl ConvBackend for Im2colGemmBackend {
    fn name(&self) -> &'static str {
        "im2col-gemm"
    }

    fn kernel(&self) -> Option<Kernel> {
        Some(Kernel::Im2col)
    }

    fn supports(&self, _params: ConvParams) -> bool {
        true
    }

    fn conv2d(
        &self,
        x: &Tensor<f32>,
        w: &Tensor<f32>,
        bias: Option<&Tensor<f32>>,
        params: ConvParams,
    ) -> Tensor<f32> {
        conv2d_im2col(x, w, bias, params)
    }
}

/// FP32 Winograd convolution on F2 or F4 tiles (F6 is accepted as a reference
/// configuration but maps to no accelerator kernel).
#[derive(Debug, Clone, Copy)]
pub struct WinogradBackend {
    tile: TileSize,
}

impl WinogradBackend {
    /// A backend for the given tile size.
    pub fn new(tile: TileSize) -> Self {
        Self { tile }
    }

    /// The F(2×2, 3×3) backend.
    pub fn f2() -> Self {
        Self::new(TileSize::F2)
    }

    /// The F(4×4, 3×3) backend.
    pub fn f4() -> Self {
        Self::new(TileSize::F4)
    }

    /// The tile size this backend runs.
    pub fn tile(&self) -> TileSize {
        self.tile
    }
}

impl ConvBackend for WinogradBackend {
    fn name(&self) -> &'static str {
        match self.tile {
            TileSize::F2 => "winograd-f2",
            TileSize::F4 => "winograd-f4",
            TileSize::F6 => "winograd-f6",
        }
    }

    fn kernel(&self) -> Option<Kernel> {
        match self.tile {
            TileSize::F2 => Some(Kernel::WinogradF2),
            TileSize::F4 => Some(Kernel::WinogradF4),
            TileSize::F6 => None,
        }
    }

    fn supports(&self, params: ConvParams) -> bool {
        // The Winograd paths implement the paper's target layer: 3×3, unit
        // stride, "same" padding of one.
        params.is_winograd_eligible() && params.padding == 1
    }

    fn conv2d(
        &self,
        x: &Tensor<f32>,
        w: &Tensor<f32>,
        bias: Option<&Tensor<f32>>,
        params: ConvParams,
    ) -> Tensor<f32> {
        assert!(
            self.supports(params),
            "winograd backend: unsupported geometry {params:?}"
        );
        // The bias rides in the tap-major output epilogue instead of a second
        // pass over the feature map.
        PreparedWinogradConv::prepare(w, self.tile).forward_fused(x, bias, false)
    }

    fn conv2d_epilogue(
        &self,
        x: &Tensor<f32>,
        w: &Tensor<f32>,
        params: ConvParams,
        ops: &EpilogueOps,
    ) -> Tensor<f32> {
        assert!(
            self.supports(params),
            "winograd backend: unsupported geometry {params:?}"
        );
        // The whole tail — bias, residual, ReLUs — rides the tap-major
        // output transformation in-register.
        PreparedWinogradConv::prepare(w, self.tile).forward_with_epilogue(x, ops)
    }
}

/// The integer tap-wise Winograd pipeline (the paper's contribution) behind
/// the FP32 engine contract.
///
/// Scales are calibrated per call from the live activations and weights
/// ([`TapwiseScales::calibrate`]), the input is quantized to
/// `cfg.spatial_bits`, the integer pipeline runs, and the int8 output is
/// dequantized; an optional bias is applied in FP32 after dequantization.
/// This trades calibration cost for drop-in correctness — a deployment would
/// calibrate offline and cache the prepared [`IntWinogradConv`].
#[derive(Debug, Clone, Copy)]
pub struct IntWinogradTapwiseBackend {
    cfg: WinogradQuantConfig,
}

impl IntWinogradTapwiseBackend {
    /// A backend running the given quantization configuration.
    pub fn new(cfg: WinogradQuantConfig) -> Self {
        assert!(
            cfg.tile != TileSize::F6,
            "integer pipeline supports F2 and F4 only (F6 has non-integer B/A matrices)"
        );
        Self { cfg }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> WinogradQuantConfig {
        self.cfg
    }
}

impl ConvBackend for IntWinogradTapwiseBackend {
    fn name(&self) -> &'static str {
        "int-winograd-tapwise"
    }

    fn kernel(&self) -> Option<Kernel> {
        match self.cfg.tile {
            TileSize::F2 => Some(Kernel::WinogradF2),
            TileSize::F4 => Some(Kernel::WinogradF4),
            TileSize::F6 => None,
        }
    }

    fn supports(&self, params: ConvParams) -> bool {
        params.is_winograd_eligible() && params.padding == 1
    }

    fn conv2d(
        &self,
        x: &Tensor<f32>,
        w: &Tensor<f32>,
        bias: Option<&Tensor<f32>>,
        params: ConvParams,
    ) -> Tensor<f32> {
        assert!(
            self.supports(params),
            "int winograd backend: unsupported geometry {params:?}"
        );
        let mats = WinogradMatrices::for_tile(self.cfg.tile);
        let scales = TapwiseScales::calibrate(w, x, &mats, self.cfg.wino_bits, self.cfg.mode);
        let input_params =
            QuantParams::from_max(x.abs_max(), self.cfg.spatial_bits).to_power_of_two();
        let xq: Tensor<i8> = x.map(|v| input_params.quantize(v) as i8);
        let output_max = estimate_output_max(x, w);
        let conv = IntWinogradConv::prepare(w, &scales, input_params, output_max, self.cfg);
        let mut y = conv.forward(&xq).dequantize();
        if let Some(b) = bias {
            add_bias(&mut y, b);
        }
        y
    }

    fn conv2d_epilogue(
        &self,
        x: &Tensor<f32>,
        w: &Tensor<f32>,
        params: ConvParams,
        ops: &EpilogueOps,
    ) -> Tensor<f32> {
        assert!(
            self.supports(params),
            "int winograd backend: unsupported geometry {params:?}"
        );
        let mats = WinogradMatrices::for_tile(self.cfg.tile);
        let scales = TapwiseScales::calibrate(w, x, &mats, self.cfg.wino_bits, self.cfg.mode);
        let input_params =
            QuantParams::from_max(x.abs_max(), self.cfg.spatial_bits).to_power_of_two();
        let xq: Tensor<i8> = x.map(|v| input_params.quantize(v) as i8);
        // The bias rides the requant stage, so the output quantizer must
        // cover conv + bias.
        let output_max =
            estimate_output_max(x, w) + ops.bias.map_or(0.0, wino_tensor::Tensor::abs_max);
        let conv = IntWinogradConv::prepare(w, &scales, input_params, output_max, self.cfg);
        // Bias, requantization, residual and ReLUs all fuse into the integer
        // scatter stage.
        conv.forward_epilogue(&xq, ops)
    }
}

/// A *statistical* estimate of the output dynamic range used to build the
/// output quantizer: the geometric mean of the per-output-pixel worst case
/// `|x|_max · Σ|w|` (which never clips but wastes most of the int8 code space
/// on zero-mean signals) and the random-signal expectation
/// `|x|_max · sqrt(Σ|w|)`.
///
/// Adversarially correlated inputs and weights (e.g. all-positive constants)
/// can exceed this estimate and clip; a deployment should instead calibrate
/// the true output maximum offline and pass it to
/// [`IntWinogradConv::prepare`] directly.
pub(crate) fn estimate_output_max(x: &Tensor<f32>, w: &Tensor<f32>) -> f32 {
    let (c_out, c_in, kh, kw) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    let mut worst_l1 = 0.0_f32;
    for co in 0..c_out {
        let mut l1 = 0.0_f32;
        for ci in 0..c_in {
            for ky in 0..kh {
                for kx in 0..kw {
                    l1 += w.at4(co, ci, ky, kx).abs();
                }
            }
        }
        worst_l1 = worst_l1.max(l1);
    }
    // The full L1 bound is extremely loose for random-ish signals; the square
    // root interpolation keeps headroom while preserving output resolution.
    let bound = x.abs_max() * worst_l1;
    let expected = x.abs_max() * worst_l1.sqrt();
    (bound * expected).sqrt().max(f32::EPSILON)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_tensor::normal;

    fn layer() -> (Tensor<f32>, Tensor<f32>, Tensor<f32>, ConvParams) {
        let x = normal(&[1, 4, 10, 10], 0.0, 1.0, 70);
        let w = normal(&[6, 4, 3, 3], 0.0, 0.3, 71);
        let b = normal(&[6], 0.0, 0.2, 72);
        (x, w, b, ConvParams::same_3x3())
    }

    #[test]
    fn float_backends_agree_with_direct() {
        let (x, w, b, p) = layer();
        let reference = conv2d_direct(&x, &w, Some(&b), p);
        for backend in [
            Box::new(Im2colGemmBackend) as Box<dyn ConvBackend>,
            Box::new(WinogradBackend::f2()),
            Box::new(WinogradBackend::f4()),
        ] {
            let y = backend.conv2d(&x, &w, Some(&b), p);
            assert!(
                y.relative_error(&reference) < 1e-4,
                "{} disagrees with direct",
                backend.name()
            );
        }
    }

    #[test]
    fn int_backend_tracks_reference_within_quant_noise() {
        let (x, w, b, p) = layer();
        let reference = conv2d_direct(&x, &w, Some(&b), p);
        let backend =
            IntWinogradTapwiseBackend::new(WinogradQuantConfig::tapwise_po2(TileSize::F4, 10));
        let y = backend.conv2d(&x, &w, Some(&b), p);
        let err = y.relative_error(&reference);
        assert!(err < 0.25, "int8/10 tap-wise backend error {err}");
    }

    #[test]
    fn winograd_backend_rejects_strided() {
        let b = WinogradBackend::f4();
        assert!(!b.supports(ConvParams::new(3, 2, 1)));
        assert!(!b.supports(ConvParams::pointwise()));
        assert!(b.supports(ConvParams::same_3x3()));
    }

    #[test]
    #[should_panic(expected = "F2 and F4 only")]
    fn int_backend_rejects_f6() {
        let _ = IntWinogradTapwiseBackend::new(WinogradQuantConfig {
            tile: TileSize::F6,
            ..WinogradQuantConfig::default()
        });
    }
}
