//! Quantization-error and dynamic-range analysis (Fig. 1 and Fig. 4).
//!
//! * [`TapStatistics`] characterises the per-tap value distribution of weights
//!   in the Winograd domain (`G·f·Gᵀ`), the phenomenon of Fig. 1 that motivates
//!   tap-wise quantization.
//! * [`weight_quantization_error`] reproduces the Fig. 4 methodology: quantize
//!   the weights in the spatial or the Winograd domain with layer-wise,
//!   channel-wise, tap-wise or combined granularity, transform back with the
//!   Moore–Penrose inverse, and report the distribution of relative errors.

use crate::matrices::{TileSize, WinogradMatrices};
use crate::pinv::pseudo_inverse;
use crate::transform::{transpose, weight_transform};
use serde::{Deserialize, Serialize};
use wino_tensor::{gemm_f32, Tensor};

/// Per-tap statistics of Winograd-domain weights (Fig. 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TapStatistics {
    /// Tile edge length `t`.
    pub t: usize,
    /// Mean of `log2(|G·f·Gᵀ|)` per tap (flattened row-major), ignoring zeros.
    pub mean_log2_abs: Vec<f32>,
    /// Standard deviation of `log2(|G·f·Gᵀ|)` per tap.
    pub std_log2_abs: Vec<f32>,
    /// Maximum absolute value per tap.
    pub max_abs: Vec<f32>,
}

impl TapStatistics {
    /// Dynamic-range spread across taps: difference (in bits, i.e. log2) between
    /// the largest and the smallest per-tap maximum.
    pub fn range_spread_bits(&self) -> f32 {
        let max = self.max_abs.iter().cloned().fold(f32::MIN, f32::max);
        let min = self
            .max_abs
            .iter()
            .cloned()
            .filter(|v| *v > 0.0)
            .fold(f32::MAX, f32::min);
        if min == f32::MAX || max <= 0.0 {
            0.0
        } else {
            (max / min).log2()
        }
    }
}

/// Computes the per-tap statistics of a weight tensor transformed into the
/// Winograd domain of the given tile size.
///
/// # Panics
///
/// Panics if `weights` is not an OIHW tensor with 3×3 kernels.
pub fn tap_statistics(weights: &Tensor<f32>, tile: TileSize) -> TapStatistics {
    assert_eq!(weights.rank(), 4, "weights must be OIHW");
    assert_eq!(weights.dims()[2], 3);
    assert_eq!(weights.dims()[3], 3);
    let mats = WinogradMatrices::for_tile(tile);
    let t = mats.input_tile();
    let (c_out, c_in) = (weights.dims()[0], weights.dims()[1]);

    let mut sums = vec![0.0_f64; t * t];
    let mut sq_sums = vec![0.0_f64; t * t];
    let mut counts = vec![0usize; t * t];
    let mut max_abs = vec![0.0_f32; t * t];
    for co in 0..c_out {
        for ci in 0..c_in {
            let mut k = Tensor::<f32>::zeros(&[3, 3]);
            for ky in 0..3 {
                for kx in 0..3 {
                    k.set2(ky, kx, weights.at4(co, ci, ky, kx));
                }
            }
            let u = weight_transform(&k, &mats);
            for idx in 0..t * t {
                let v = u.as_slice()[idx].abs();
                max_abs[idx] = max_abs[idx].max(v);
                if v > 1e-20 {
                    let l = f64::from(v.log2());
                    sums[idx] += l;
                    sq_sums[idx] += l * l;
                    counts[idx] += 1;
                }
            }
        }
    }
    let mean_log2_abs: Vec<f32> = sums
        .iter()
        .zip(counts.iter())
        .map(|(&s, &c)| if c > 0 { (s / c as f64) as f32 } else { 0.0 })
        .collect();
    let std_log2_abs: Vec<f32> = sq_sums
        .iter()
        .zip(sums.iter())
        .zip(counts.iter())
        .map(|((&sq, &s), &c)| {
            if c > 0 {
                let mean = s / c as f64;
                ((sq / c as f64 - mean * mean).max(0.0)).sqrt() as f32
            } else {
                0.0
            }
        })
        .collect();
    TapStatistics {
        t,
        mean_log2_abs,
        std_log2_abs,
        max_abs,
    }
}

/// The maximum absolute value per Winograd-domain tap of a weight tensor, as a
/// `t×t` tensor (the quantity tap-wise scales are calibrated from).
pub fn tap_dynamic_range(weights: &Tensor<f32>, tile: TileSize) -> Tensor<f32> {
    let stats = tap_statistics(weights, tile);
    Tensor::from_vec(stats.max_abs.clone(), &[stats.t, stats.t]).expect("tap range shape")
}

/// The domain a tensor is quantized in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantDomain {
    /// Quantize the 3×3 spatial kernels directly (Fig. 4a).
    Spatial,
    /// Quantize `G·f·Gᵀ` in the Winograd domain of the given tile (Fig. 4b).
    Winograd(TileSize),
}

/// The granularity at which scaling factors are shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantGranularity {
    /// One scale per layer ("uniform"/layer-wise in the paper).
    LayerWise,
    /// One scale per output channel.
    ChannelWise,
    /// One scale per Winograd tap (only meaningful in the Winograd domain).
    TapWise,
    /// One scale per (output channel, tap) pair.
    ChannelAndTapWise,
}

/// The outcome of a Fig.-4-style error measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizationErrorReport {
    /// `log2` of the relative error of each output channel of each layer.
    pub log2_errors: Vec<f32>,
    /// Mean of the relative errors (linear scale).
    pub mean_error: f32,
    /// `log2` of the mean relative error (the numbers quoted in §V-A4).
    pub mean_log2_error: f32,
}

impl QuantizationErrorReport {
    fn from_errors(errors: Vec<f32>) -> Self {
        let mean_error = if errors.is_empty() {
            0.0
        } else {
            errors.iter().sum::<f32>() / errors.len() as f32
        };
        let log2_errors = errors.iter().map(|e| e.max(1e-30).log2()).collect();
        Self {
            log2_errors,
            mean_error,
            mean_log2_error: mean_error.max(1e-30).log2(),
        }
    }

    /// Histogram of the `log2` errors between `lo` and `hi` with `bins` bins,
    /// normalised to sum to one (matching the paper's "value distribution"
    /// plots).
    pub fn histogram(&self, lo: f32, hi: f32, bins: usize) -> Vec<f32> {
        assert!(bins > 0 && hi > lo);
        let mut h = vec![0.0_f32; bins];
        for &e in &self.log2_errors {
            let pos = ((e - lo) / (hi - lo) * bins as f32).floor();
            let idx = (pos.max(0.0) as usize).min(bins - 1);
            h[idx] += 1.0;
        }
        let total: f32 = h.iter().sum();
        if total > 0.0 {
            for v in &mut h {
                *v /= total;
            }
        }
        h
    }
}

/// Mean-centred quantizer of the paper's §V-A4:
/// `Quant_{µ,s}(x) = µ + s·⌊(x−µ)/s⌉` clamped to `n` bits, with
/// `s = γ·σ / 2^{n-1}` and `γ` optimised to minimise the relative error.
fn quantize_group(values: &mut [f32], bits: u8) {
    if values.is_empty() {
        return;
    }
    let n = values.len() as f32;
    let mu: f32 = values.iter().sum::<f32>() / n;
    let sigma: f32 = (values.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / n)
        .sqrt()
        .max(1e-12);
    let qmax = (1_i32 << (bits - 1)) - 1;
    let qmin = -(1_i32 << (bits - 1));

    // Optimise gamma with a coarse grid search, minimising the summed relative
    // error as in the paper's argmin.
    let mut best_gamma = 4.0_f32;
    let mut best_err = f32::MAX;
    let denom: f32 = values.iter().map(|v| v.abs()).sum::<f32>().max(1e-12);
    for step in 1..=64 {
        let gamma = step as f32 * 0.25; // 0.25 .. 16
        let s = gamma * sigma / (1_i32 << (bits - 1)) as f32;
        let err: f32 = values
            .iter()
            .map(|&v| {
                let q = (((v - mu) / s).round() as i32).clamp(qmin, qmax);
                (mu + s * q as f32 - v).abs()
            })
            .sum::<f32>()
            / denom;
        if err < best_err {
            best_err = err;
            best_gamma = gamma;
        }
    }
    let s = best_gamma * sigma / (1_i32 << (bits - 1)) as f32;
    for v in values.iter_mut() {
        let q = (((*v - mu) / s).round() as i32).clamp(qmin, qmax);
        *v = mu + s * q as f32;
    }
}

/// Measures the relative quantization error of a set of layers' weights under
/// the chosen domain and granularity (the Fig. 4 experiment).
///
/// Each element of `layers` is one OIHW weight tensor with 3×3 kernels. The
/// returned report contains one relative error per output channel per layer
/// (error measured in the spatial domain; Winograd-domain quantization is
/// transformed back with the Moore–Penrose inverse of `G`).
#[allow(clippy::needless_range_loop)] // index-heavy math reads clearer with explicit loops
pub fn weight_quantization_error(
    layers: &[Tensor<f32>],
    domain: QuantDomain,
    granularity: QuantGranularity,
    bits: u8,
) -> QuantizationErrorReport {
    let mut errors = Vec::new();
    for w in layers {
        assert_eq!(w.rank(), 4, "weights must be OIHW");
        let (c_out, c_in) = (w.dims()[0], w.dims()[1]);
        match domain {
            QuantDomain::Spatial => {
                // Collect values per group, quantize, compute per-channel error.
                let mut quantized = w.clone();
                match granularity {
                    QuantGranularity::LayerWise => {
                        let mut vals: Vec<f32> = w.as_slice().to_vec();
                        quantize_group(&mut vals, bits);
                        quantized = Tensor::from_vec(vals, w.dims()).expect("layer quant shape");
                    }
                    _ => {
                        // Channel-wise (tap-wise has no meaning in the spatial
                        // domain and degenerates to channel-wise here).
                        for co in 0..c_out {
                            let mut vals = Vec::with_capacity(c_in * 9);
                            for ci in 0..c_in {
                                for ky in 0..3 {
                                    for kx in 0..3 {
                                        vals.push(w.at4(co, ci, ky, kx));
                                    }
                                }
                            }
                            quantize_group(&mut vals, bits);
                            let mut it = vals.into_iter();
                            for ci in 0..c_in {
                                for ky in 0..3 {
                                    for kx in 0..3 {
                                        quantized.set4(co, ci, ky, kx, it.next().unwrap());
                                    }
                                }
                            }
                        }
                    }
                }
                for co in 0..c_out {
                    errors.push(channel_relative_error(w, &quantized, co));
                }
            }
            QuantDomain::Winograd(tile) => {
                let mats = WinogradMatrices::for_tile(tile);
                let t = mats.input_tile();
                // Transform every kernel.
                let mut wino = vec![vec![Tensor::<f32>::zeros(&[t, t]); c_in]; c_out];
                for co in 0..c_out {
                    for ci in 0..c_in {
                        let mut k = Tensor::<f32>::zeros(&[3, 3]);
                        for ky in 0..3 {
                            for kx in 0..3 {
                                k.set2(ky, kx, w.at4(co, ci, ky, kx));
                            }
                        }
                        wino[co][ci] = weight_transform(&k, &mats);
                    }
                }
                // Quantize according to granularity.
                match granularity {
                    QuantGranularity::LayerWise => {
                        let mut vals: Vec<f32> = wino
                            .iter()
                            .flat_map(|row| row.iter().flat_map(|t| t.as_slice().iter().copied()))
                            .collect();
                        quantize_group(&mut vals, bits);
                        let mut it = vals.into_iter();
                        for row in wino.iter_mut() {
                            for tile_w in row.iter_mut() {
                                for v in tile_w.as_mut_slice() {
                                    *v = it.next().unwrap();
                                }
                            }
                        }
                    }
                    QuantGranularity::ChannelWise => {
                        for row in wino.iter_mut() {
                            let mut vals: Vec<f32> = row
                                .iter()
                                .flat_map(|t| t.as_slice().iter().copied())
                                .collect();
                            quantize_group(&mut vals, bits);
                            let mut it = vals.into_iter();
                            for tile_w in row.iter_mut() {
                                for v in tile_w.as_mut_slice() {
                                    *v = it.next().unwrap();
                                }
                            }
                        }
                    }
                    QuantGranularity::TapWise => {
                        for tap in 0..t * t {
                            let mut vals: Vec<f32> = wino
                                .iter()
                                .flat_map(|row| row.iter().map(|t| t.as_slice()[tap]))
                                .collect();
                            quantize_group(&mut vals, bits);
                            let mut it = vals.into_iter();
                            for row in wino.iter_mut() {
                                for tile_w in row.iter_mut() {
                                    tile_w.as_mut_slice()[tap] = it.next().unwrap();
                                }
                            }
                        }
                    }
                    QuantGranularity::ChannelAndTapWise => {
                        for row in wino.iter_mut() {
                            for tap in 0..t * t {
                                let mut vals: Vec<f32> =
                                    row.iter().map(|t| t.as_slice()[tap]).collect();
                                quantize_group(&mut vals, bits);
                                let mut it = vals.into_iter();
                                for tile_w in row.iter_mut() {
                                    tile_w.as_mut_slice()[tap] = it.next().unwrap();
                                }
                            }
                        }
                    }
                }
                // Back-transform with the pseudo-inverse and measure per-channel error.
                let g_pinv = pseudo_inverse(&mats.g); // [3, t]
                let g_pinv_t = transpose(&g_pinv); // [t, 3]
                let mut reconstructed = w.clone();
                for co in 0..c_out {
                    for ci in 0..c_in {
                        let back = gemm_f32(&gemm_f32(&g_pinv, &wino[co][ci]), &g_pinv_t);
                        for ky in 0..3 {
                            for kx in 0..3 {
                                reconstructed.set4(co, ci, ky, kx, back.at2(ky, kx));
                            }
                        }
                    }
                }
                for co in 0..c_out {
                    errors.push(channel_relative_error(w, &reconstructed, co));
                }
            }
        }
    }
    QuantizationErrorReport::from_errors(errors)
}

/// Relative L1 error of one output channel: `Σ|q − f| / Σ|f|`.
fn channel_relative_error(original: &Tensor<f32>, quantized: &Tensor<f32>, co: usize) -> f32 {
    let (c_in, kh, kw) = (original.dims()[1], original.dims()[2], original.dims()[3]);
    let mut num = 0.0_f32;
    let mut den = 0.0_f32;
    for ci in 0..c_in {
        for ky in 0..kh {
            for kx in 0..kw {
                num += (quantized.at4(co, ci, ky, kx) - original.at4(co, ci, ky, kx)).abs();
                den += original.at4(co, ci, ky, kx).abs();
            }
        }
    }
    if den <= 1e-20 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_tensor::kaiming_normal;

    fn sample_layers() -> Vec<Tensor<f32>> {
        vec![
            kaiming_normal(&[16, 8, 3, 3], 1),
            kaiming_normal(&[32, 16, 3, 3], 2),
        ]
    }

    #[test]
    fn tap_statistics_show_wide_dynamic_range_for_f4() {
        let w = kaiming_normal(&[32, 32, 3, 3], 7);
        let stats = tap_statistics(&w, TileSize::F4);
        assert_eq!(stats.max_abs.len(), 36);
        // The F4 transform spreads per-tap maxima by several bits (Fig. 1); the
        // corner tap (G row 5 has the raw weight) and the centre taps differ
        // strongly.
        assert!(
            stats.range_spread_bits() > 2.0,
            "expected > 2 bits of spread, got {}",
            stats.range_spread_bits()
        );
        // F2 spreads less than F4.
        let stats_f2 = tap_statistics(&w, TileSize::F2);
        assert!(stats_f2.range_spread_bits() < stats.range_spread_bits());
    }

    #[test]
    fn tap_dynamic_range_matches_statistics() {
        let w = kaiming_normal(&[8, 4, 3, 3], 9);
        let r = tap_dynamic_range(&w, TileSize::F4);
        let s = tap_statistics(&w, TileSize::F4);
        assert_eq!(r.as_slice(), &s.max_abs[..]);
    }

    #[test]
    fn channel_wise_beats_layer_wise_in_spatial_domain() {
        let layers = sample_layers();
        let lw = weight_quantization_error(
            &layers,
            QuantDomain::Spatial,
            QuantGranularity::LayerWise,
            8,
        );
        let cw = weight_quantization_error(
            &layers,
            QuantDomain::Spatial,
            QuantGranularity::ChannelWise,
            8,
        );
        assert!(
            cw.mean_error <= lw.mean_error * 1.05,
            "channel-wise should not be worse"
        );
    }

    #[test]
    fn tap_wise_beats_layer_and_channel_wise_in_winograd_domain() {
        let layers = sample_layers();
        let d = QuantDomain::Winograd(TileSize::F4);
        let lw = weight_quantization_error(&layers, d, QuantGranularity::LayerWise, 8);
        let cw = weight_quantization_error(&layers, d, QuantGranularity::ChannelWise, 8);
        let tw = weight_quantization_error(&layers, d, QuantGranularity::TapWise, 8);
        assert!(
            tw.mean_error < lw.mean_error && tw.mean_error < cw.mean_error,
            "tap-wise ({}) must beat layer-wise ({}) and channel-wise ({})",
            tw.mean_error,
            lw.mean_error,
            cw.mean_error
        );
    }

    #[test]
    fn combined_channel_and_tap_is_at_least_as_good_as_tap_wise() {
        let layers = sample_layers();
        let d = QuantDomain::Winograd(TileSize::F4);
        let tw = weight_quantization_error(&layers, d, QuantGranularity::TapWise, 8);
        let ct = weight_quantization_error(&layers, d, QuantGranularity::ChannelAndTapWise, 8);
        assert!(ct.mean_error <= tw.mean_error * 1.05);
    }

    #[test]
    fn histogram_is_normalised() {
        let layers = sample_layers();
        let rep = weight_quantization_error(
            &layers,
            QuantDomain::Spatial,
            QuantGranularity::ChannelWise,
            8,
        );
        let h = rep.histogram(-15.0, 5.0, 40);
        let sum: f32 = h.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert_eq!(h.len(), 40);
    }

    #[test]
    fn more_bits_reduce_error() {
        let layers = sample_layers();
        let d = QuantDomain::Winograd(TileSize::F4);
        let e8 = weight_quantization_error(&layers, d, QuantGranularity::TapWise, 8);
        let e10 = weight_quantization_error(&layers, d, QuantGranularity::TapWise, 10);
        assert!(e10.mean_error < e8.mean_error);
    }
}
