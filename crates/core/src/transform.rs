//! The three Winograd transformations and the tile extraction helpers.
//!
//! Every transformation has the generic form `s_w = Tᵀ · s · T` (Eq. 4 of the
//! paper): the input transformation uses `T = B`, the weight transformation
//! uses `T = Gᵀ` (i.e. `G · f · Gᵀ`), and the output transformation uses
//! `T = A` (i.e. `Aᵀ · M · A`).

use crate::matrices::WinogradMatrices;
use wino_tensor::{gemm_f32, Tensor};

/// Multiplies `a[m×k] · b[k×n]` for small dense matrices (thin wrapper over the
/// substrate GEMM to keep call sites readable).
fn matmul(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
    gemm_f32(a, b)
}

/// Transposes a 2-D tensor.
pub(crate) fn transpose(a: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(a.rank(), 2);
    let (r, c) = (a.dims()[0], a.dims()[1]);
    let mut out = Tensor::<f32>::zeros(&[c, r]);
    for i in 0..r {
        for j in 0..c {
            out.set2(j, i, a.at2(i, j));
        }
    }
    out
}

/// Input transformation of a single `t×t` spatial tile: `V = Bᵀ · d · B`.
///
/// # Panics
///
/// Panics if `tile` is not `t×t` for the given matrices.
pub fn input_transform(tile: &Tensor<f32>, mats: &WinogradMatrices) -> Tensor<f32> {
    let t = mats.input_tile();
    assert_eq!(tile.dims(), &[t, t], "input_transform: tile shape mismatch");
    let b = transpose(&mats.bt);
    matmul(&matmul(&mats.bt, tile), &b)
}

/// Weight transformation of a single `3×3` kernel: `U = G · f · Gᵀ`.
///
/// # Panics
///
/// Panics if `kernel` is not `3×3`.
pub fn weight_transform(kernel: &Tensor<f32>, mats: &WinogradMatrices) -> Tensor<f32> {
    assert_eq!(
        kernel.dims(),
        &[3, 3],
        "weight_transform: kernel must be 3x3"
    );
    let gt = transpose(&mats.g);
    matmul(&matmul(&mats.g, kernel), &gt)
}

/// Output transformation of a single `t×t` Winograd-domain tile:
/// `Y = Aᵀ · M · A`, producing an `m×m` spatial tile.
///
/// # Panics
///
/// Panics if `m_tile` is not `t×t`.
pub fn output_transform(m_tile: &Tensor<f32>, mats: &WinogradMatrices) -> Tensor<f32> {
    let t = mats.input_tile();
    assert_eq!(
        m_tile.dims(),
        &[t, t],
        "output_transform: tile shape mismatch"
    );
    let a = transpose(&mats.at);
    matmul(&matmul(&mats.at, m_tile), &a)
}

/// Computes the congruence transform `dst = M · d · Mᵀ` on flat row-major
/// buffers without allocating: `M` is `[r × c]`, `d` is `[c × c]`, `dst` is
/// `[r × r]` and `tmp` is caller-provided scratch of at least `r · c`
/// elements. This is the allocation-free core of all three Winograd
/// transformations, used by the hot convolution loops; the `Tensor`-based
/// wrappers above remain the readable public API.
#[inline]
pub fn congruence_into(dst: &mut [f32], tmp: &mut [f32], m: &[f32], d: &[f32], r: usize, c: usize) {
    debug_assert!(dst.len() >= r * r);
    debug_assert!(tmp.len() >= r * c);
    debug_assert!(m.len() >= r * c);
    debug_assert!(d.len() >= c * c);
    // tmp = M · d
    for i in 0..r {
        for j in 0..c {
            let mut s = 0.0_f32;
            for k in 0..c {
                s += m[i * c + k] * d[k * c + j];
            }
            tmp[i * c + j] = s;
        }
    }
    // dst = tmp · Mᵀ
    for i in 0..r {
        for j in 0..r {
            let mut s = 0.0_f32;
            for k in 0..c {
                s += tmp[i * c + k] * m[j * c + k];
            }
            dst[i * r + j] = s;
        }
    }
}

/// Describes how an NCHW feature map is decomposed into overlapping Winograd
/// input tiles for a same-padded, stride-1, 3×3 convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    /// Output tile edge `m`.
    pub m: usize,
    /// Input tile edge `t = m + 2`.
    pub t: usize,
    /// Number of tile rows (`ceil(H / m)`).
    pub tiles_h: usize,
    /// Number of tile columns (`ceil(W / m)`).
    pub tiles_w: usize,
    /// Spatial padding of the convolution (1 for "same" 3×3).
    pub padding: usize,
}

impl TileGrid {
    /// Builds the tile grid for an `H×W` output produced with the given tile
    /// size and padding.
    pub fn new(h: usize, w: usize, m: usize, padding: usize) -> Self {
        Self {
            m,
            t: m + 2,
            tiles_h: h.div_ceil(m),
            tiles_w: w.div_ceil(m),
            padding,
        }
    }

    /// Total number of tiles per (batch, channel) plane.
    pub fn tiles(&self) -> usize {
        self.tiles_h * self.tiles_w
    }
}

/// Extracts the `t×t` input tile feeding output tile `(ty, tx)` of channel
/// `(n, c)`, materialising zero padding and out-of-image positions as zeros.
pub fn extract_input_tile(
    x: &Tensor<f32>,
    n: usize,
    c: usize,
    ty: usize,
    tx: usize,
    grid: &TileGrid,
) -> Tensor<f32> {
    let (h, w) = (x.dims()[2], x.dims()[3]);
    let mut tile = Tensor::<f32>::zeros(&[grid.t, grid.t]);
    let y0 = (ty * grid.m) as isize - grid.padding as isize;
    let x0 = (tx * grid.m) as isize - grid.padding as isize;
    for dy in 0..grid.t {
        let iy = y0 + dy as isize;
        if iy < 0 || iy >= h as isize {
            continue;
        }
        for dx in 0..grid.t {
            let ix = x0 + dx as isize;
            if ix < 0 || ix >= w as isize {
                continue;
            }
            tile.set2(dy, dx, x.at4(n, c, iy as usize, ix as usize));
        }
    }
    tile
}

/// Writes an `m×m` output tile into the NCHW output tensor, cropping the parts
/// that fall outside the true output extent (needed when `H` or `W` is not a
/// multiple of `m`, cf. the paper's note on zero-padding ineffective work).
pub fn place_output_tile(
    y: &mut Tensor<f32>,
    tile: &Tensor<f32>,
    n: usize,
    c: usize,
    ty: usize,
    tx: usize,
    grid: &TileGrid,
) {
    let (h, w) = (y.dims()[2], y.dims()[3]);
    for dy in 0..grid.m {
        let oy = ty * grid.m + dy;
        if oy >= h {
            continue;
        }
        for dx in 0..grid.m {
            let ox = tx * grid.m + dx;
            if ox >= w {
                continue;
            }
            y.set4(n, c, oy, ox, tile.at2(dy, dx));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{TileSize, WinogradMatrices};
    use wino_tensor::normal;

    /// Direct 2-D valid convolution of a t×t tile with a 3×3 kernel.
    fn direct_tile_conv(tile: &Tensor<f32>, kernel: &Tensor<f32>, m: usize) -> Tensor<f32> {
        let mut out = Tensor::<f32>::zeros(&[m, m]);
        for oy in 0..m {
            for ox in 0..m {
                let mut acc = 0.0;
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc += tile.at2(oy + ky, ox + kx) * kernel.at2(ky, kx);
                    }
                }
                out.set2(oy, ox, acc);
            }
        }
        out
    }

    #[test]
    fn single_tile_winograd_equals_direct_for_all_tile_sizes() {
        for tile_size in TileSize::all() {
            let mats = WinogradMatrices::for_tile(tile_size);
            let t = tile_size.input_tile();
            let m = tile_size.output_tile();
            let d = normal(&[t, t], 0.0, 1.0, 42 + t as u64);
            let f = normal(&[3, 3], 0.0, 1.0, 7 + t as u64);
            let v = input_transform(&d, &mats);
            let u = weight_transform(&f, &mats);
            let prod = u.mul(&v);
            let y = output_transform(&prod, &mats);
            let reference = direct_tile_conv(&d, &f, m);
            assert!(
                y.max_abs_diff(&reference) < 1e-3,
                "{tile_size}: winograd/direct mismatch {}",
                y.max_abs_diff(&reference)
            );
        }
    }

    #[test]
    fn congruence_into_matches_tensor_transforms() {
        let mats = WinogradMatrices::f4();
        let t = mats.input_tile();
        let m = mats.output_tile();
        let d = normal(&[t, t], 0.0, 1.0, 77);
        let f = normal(&[3, 3], 0.0, 1.0, 78);

        let mut dst = vec![0.0_f32; t * t];
        let mut tmp = vec![0.0_f32; t * t];
        congruence_into(&mut dst, &mut tmp, mats.bt.as_slice(), d.as_slice(), t, t);
        let expect = input_transform(&d, &mats);
        for (a, b) in dst.iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }

        let mut uk = vec![0.0_f32; t * t];
        congruence_into(&mut uk, &mut tmp, mats.g.as_slice(), f.as_slice(), t, 3);
        let expect = weight_transform(&f, &mats);
        for (a, b) in uk.iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }

        let mut out = vec![0.0_f32; m * m];
        congruence_into(&mut out, &mut tmp, mats.at.as_slice(), d.as_slice(), m, t);
        let expect = output_transform(&d, &mats);
        for (a, b) in out.iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn transform_shapes() {
        let mats = WinogradMatrices::f4();
        let d = Tensor::<f32>::zeros(&[6, 6]);
        let f = Tensor::<f32>::zeros(&[3, 3]);
        assert_eq!(input_transform(&d, &mats).dims(), &[6, 6]);
        assert_eq!(weight_transform(&f, &mats).dims(), &[6, 6]);
        assert_eq!(output_transform(&d, &mats).dims(), &[4, 4]);
    }

    #[test]
    fn tile_grid_counts() {
        let g = TileGrid::new(32, 32, 4, 1);
        assert_eq!((g.tiles_h, g.tiles_w, g.tiles()), (8, 8, 64));
        let g = TileGrid::new(30, 33, 4, 1);
        assert_eq!((g.tiles_h, g.tiles_w), (8, 9));
        let g = TileGrid::new(7, 7, 2, 1);
        assert_eq!((g.tiles_h, g.tiles_w), (4, 4));
    }

    #[test]
    fn extract_tile_handles_padding_and_borders() {
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32 + 1.0);
        let grid = TileGrid::new(4, 4, 4, 1);
        let tile = extract_input_tile(&x, 0, 0, 0, 0, &grid);
        // Top-left corner of the tile is padding.
        assert_eq!(tile.at2(0, 0), 0.0);
        // (1,1) of the tile is x(0,0).
        assert_eq!(tile.at2(1, 1), 1.0);
        // Bottom-right of the tile is padding again (input only 4 wide).
        assert_eq!(tile.at2(5, 5), 0.0);
        assert_eq!(tile.at2(4, 4), 16.0);
    }

    #[test]
    fn place_output_tile_crops() {
        let mut y = Tensor::<f32>::zeros(&[1, 1, 5, 5]);
        let grid = TileGrid::new(5, 5, 4, 1);
        let tile = Tensor::<f32>::filled(&[4, 4], 2.0);
        // Tile (1,1) covers rows/cols 4..8 but only 4..5 exist.
        place_output_tile(&mut y, &tile, 0, 0, 1, 1, &grid);
        assert_eq!(y.at4(0, 0, 4, 4), 2.0);
        assert_eq!(y.at4(0, 0, 3, 3), 0.0);
        assert_eq!(y.sum(), 2.0);
    }
}
