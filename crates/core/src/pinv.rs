//! Moore–Penrose pseudo-inverse for small dense matrices.
//!
//! Section V-A4 of the paper transforms Winograd-domain quantized weights back
//! to the spatial domain with the Moore–Penrose inverse of the transformation
//! matrices in order to measure the quantization error in a comparable domain.
//! The `G` matrices are tall with full column rank, so the pseudo-inverse is
//! `G⁺ = (Gᵀ G)⁻¹ Gᵀ`, which only needs a small symmetric matrix inverse.

use crate::transform::transpose;
use wino_tensor::{gemm_f32, Tensor};

/// Inverts a small square matrix with Gauss–Jordan elimination and partial
/// pivoting.
///
/// # Panics
///
/// Panics if the matrix is not square or is numerically singular.
#[allow(clippy::needless_range_loop)] // index-heavy math reads clearer with explicit loops
pub fn invert(a: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(a.rank(), 2, "invert: matrix required");
    let n = a.dims()[0];
    assert_eq!(a.dims()[1], n, "invert: matrix must be square");

    // Work in f64 for stability; the matrices involved are tiny.
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| f64::from(a.at2(i, j)))
                .chain((0..n).map(|j| if i == j { 1.0 } else { 0.0 }))
                .collect()
        })
        .collect();

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())
            .expect("non-empty");
        assert!(m[pivot_row][col].abs() > 1e-12, "invert: singular matrix");
        m.swap(col, pivot_row);
        let pivot = m[col][col];
        for v in m[col].iter_mut() {
            *v /= pivot;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = m[row][col];
            if factor == 0.0 {
                continue;
            }
            for k in 0..2 * n {
                m[row][k] -= factor * m[col][k];
            }
        }
    }

    let mut out = Tensor::<f32>::zeros(&[n, n]);
    for i in 0..n {
        for j in 0..n {
            out.set2(i, j, m[i][n + j] as f32);
        }
    }
    out
}

/// Moore–Penrose pseudo-inverse of a full-column-rank matrix `A[m×n]`
/// (`m >= n`): `A⁺ = (Aᵀ A)⁻¹ Aᵀ`, of shape `[n×m]`.
///
/// For square invertible matrices this coincides with the ordinary inverse.
///
/// # Panics
///
/// Panics if `A` has more columns than rows or `Aᵀ A` is singular.
#[allow(clippy::needless_range_loop)] // index-heavy math reads clearer with explicit loops
pub fn pseudo_inverse(a: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(a.rank(), 2, "pseudo_inverse: matrix required");
    let (m, n) = (a.dims()[0], a.dims()[1]);
    assert!(
        m >= n,
        "pseudo_inverse: expects a tall (or square) matrix, got {m}x{n}"
    );
    let at = transpose(a);
    let ata = gemm_f32(&at, a);
    let inv = invert(&ata);
    gemm_f32(&inv, &at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices::{TileSize, WinogradMatrices};

    fn identity(n: usize) -> Tensor<f32> {
        Tensor::from_fn(&[n, n], |i| if i % (n + 1) == 0 { 1.0 } else { 0.0 })
    }

    #[test]
    fn invert_identity_and_diagonal() {
        let eye = identity(4);
        assert!(invert(&eye).max_abs_diff(&eye) < 1e-6);
        let d = Tensor::from_vec(vec![2.0_f32, 0.0, 0.0, 0.5], &[2, 2]).unwrap();
        let di = invert(&d);
        assert!((di.at2(0, 0) - 0.5).abs() < 1e-6);
        assert!((di.at2(1, 1) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn invert_times_original_is_identity() {
        let a = Tensor::from_vec(
            vec![4.0_f32, 7.0, 2.0, 6.0, 5.0, 1.0, 3.0, 8.0, 9.0],
            &[3, 3],
        )
        .unwrap();
        let ai = invert(&a);
        let prod = gemm_f32(&a, &ai);
        assert!(prod.max_abs_diff(&identity(3)) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn singular_matrix_panics() {
        let a = Tensor::from_vec(vec![1.0_f32, 2.0, 2.0, 4.0], &[2, 2]).unwrap();
        let _ = invert(&a);
    }

    #[test]
    fn pseudo_inverse_of_g_recovers_spatial_weights() {
        // G⁺ · (G f Gᵀ) · (Gᵀ)⁺ = f for any 3x3 f, because G has full column rank.
        for tile in TileSize::all() {
            let mats = WinogradMatrices::for_tile(tile);
            let g_pinv = pseudo_inverse(&mats.g);
            let prod = gemm_f32(&g_pinv, &mats.g);
            assert!(prod.max_abs_diff(&identity(3)) < 1e-4, "{tile}: G+ G != I");
        }
    }

    #[test]
    fn pseudo_inverse_of_square_matrix_is_inverse() {
        let a = Tensor::from_vec(vec![2.0_f32, 1.0, 1.0, 3.0], &[2, 2]).unwrap();
        let p = pseudo_inverse(&a);
        let i = invert(&a);
        assert!(p.max_abs_diff(&i) < 1e-5);
    }
}
