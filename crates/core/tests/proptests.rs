//! Property-based tests of the Winograd algorithm and tap-wise quantization.

use proptest::prelude::*;
use wino_core::{
    cook_toom_matrices, cooktoom::verify_matrices, pseudo_inverse, winograd_conv2d, QuantBits,
    QuantParams, ScaleMode, TapScaleMatrix, TileSize,
};
use wino_tensor::{conv2d_direct, gemm_f32, normal, ConvParams, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FP32 Winograd convolution equals the direct convolution for every tile
    /// size and arbitrary (small) layer shapes, including spatial sizes that
    /// are not multiples of the output tile.
    #[test]
    fn winograd_equals_direct(
        c_in in 1usize..4,
        c_out in 1usize..4,
        h in 3usize..11,
        w in 3usize..11,
        seed in 0u64..1000,
    ) {
        let x = normal(&[1, c_in, h, w], 0.0, 1.0, seed);
        let k = normal(&[c_out, c_in, 3, 3], 0.0, 0.5, seed + 1);
        let reference = conv2d_direct(&x, &k, None, ConvParams::same_3x3());
        for tile in [TileSize::F2, TileSize::F4, TileSize::F6] {
            let y = winograd_conv2d(&x, &k, tile);
            prop_assert!(y.relative_error(&reference) < 1e-3, "{tile}: error too large");
        }
    }

    /// Symmetric quantization never errs by more than half a step for values
    /// inside the calibrated range, for any bit-width.
    #[test]
    fn quantization_error_is_bounded(max in 0.01f32..100.0, value_frac in -1.0f32..1.0, bits in 3u8..12) {
        let p = QuantParams::from_max(max, QuantBits::new(bits));
        let x = value_frac * max;
        let err = (p.fake_quantize(x) - x).abs();
        prop_assert!(err <= p.scale / 2.0 + 1e-5);
    }

    /// Power-of-two rounding of tap scales never shrinks a scale (so no extra
    /// clamping is introduced) and never more than doubles it.
    #[test]
    fn po2_scales_bracket_float_scales(maxes in proptest::collection::vec(0.001f32..50.0, 4)) {
        let max = Tensor::from_vec(maxes.clone(), &[2, 2]).unwrap();
        let float = TapScaleMatrix::from_max_matrix(&max, QuantBits::int8(), ScaleMode::Float);
        let po2 = TapScaleMatrix::from_max_matrix(&max, QuantBits::int8(), ScaleMode::PowerOfTwo);
        for (f, p) in float.scales().as_slice().iter().zip(po2.scales().as_slice()) {
            prop_assert!(p >= f && *p <= 2.0 * f + 1e-9);
        }
    }

    /// The Moore–Penrose pseudo-inverse is a left inverse for random tall
    /// full-rank matrices.
    #[test]
    fn pseudo_inverse_is_left_inverse(rows in 3usize..7, seed in 0u64..500) {
        let a = normal(&[rows, 3], 0.0, 1.0, seed);
        // Gaussian matrices are full column rank with probability 1.
        let pinv = pseudo_inverse(&a);
        let prod = gemm_f32(&pinv, &a);
        let eye = Tensor::from_fn(&[3, 3], |i| if i % 4 == 0 { 1.0 } else { 0.0 });
        prop_assert!(prod.max_abs_diff(&eye) < 1e-2);
    }

    /// The Toom–Cook generator produces a valid Winograd algorithm for any set
    /// of distinct small rational points.
    #[test]
    fn cook_toom_points_yield_valid_algorithms(offset in -2i32..3) {
        let points: Vec<f64> = vec![0.0, 1.0, -1.0, 0.5 + offset as f64, -(0.5 + offset as f64)];
        // Skip degenerate sets where points collide.
        let mut sorted = points.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        prop_assume!(sorted.len() == points.len());
        let (bt, g, at) = cook_toom_matrices(4, 3, &points);
        prop_assert!(verify_matrices(&bt, &g, &at, 5) < 1e-2);
    }
}
