//! End-to-end Winograd-aware quantized training (the Table II / III protocol).
//!
//! The flow follows Section III and V-A of the paper:
//!
//! 1. train an FP32 baseline with the direct (im2col) convolution;
//! 2. switch the 3×3 convolutions to the chosen Winograd kernel and
//!    quantization configuration, calibrating the tap-wise scales from the
//!    current weights and a sample of activations;
//! 3. retrain from the FP32 baseline ("Winograd-aware training"), optionally
//!    with learned log2 scales and knowledge distillation from the baseline;
//! 4. report the accuracy of the retrained quantized network next to the
//!    baseline.
//!
//! On the synthetic task the absolute accuracies differ from ImageNet, but the
//! ordering of the configurations reproduces the paper's ablation trends.

use crate::dataset::{Dataset, SyntheticImageTask};
use crate::distill::distillation_loss;
use crate::layers::ConvAlgorithm;
use crate::loss::{cross_entropy, softmax_cross_entropy_backward};
use crate::metrics::accuracy;
use crate::model::SmallCnn;
use crate::ste::LearnedTapScales;
use serde::{Deserialize, Serialize};
use wino_core::{
    QuantBits, ScaleMode, TapwiseScales, TileSize, WinogradMatrices, WinogradQuantConfig,
};
use wino_tensor::Tensor;

/// Which convolution kernel the quantized network uses (the `Alg.` column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConvKernel {
    /// Direct / im2col convolution (baseline).
    Im2col,
    /// Winograd F(2×2, 3×3).
    F2,
    /// Winograd F(4×4, 3×3).
    F4,
}

impl ConvKernel {
    /// The Winograd tile size, if this kernel is a Winograd kernel.
    pub fn tile(self) -> Option<TileSize> {
        match self {
            ConvKernel::Im2col => None,
            ConvKernel::F2 => Some(TileSize::F2),
            ConvKernel::F4 => Some(TileSize::F4),
        }
    }
}

/// One row of the Table II ablation: which techniques are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Convolution kernel.
    pub kernel: ConvKernel,
    /// Winograd-aware training: retrain with the quantized Winograd forward in
    /// the loop (`WA` column). When false the quantized kernel is only used at
    /// evaluation time (post-training quantization).
    pub winograd_aware: bool,
    /// Tap-wise scales (`⊙` column); false means one scalar per transformation.
    pub tapwise: bool,
    /// Power-of-two scales (`2x` column).
    pub power_of_two: bool,
    /// Learned log2 scales (`∇log2 t` column).
    pub learned_log2: bool,
    /// Knowledge distillation from the FP32 baseline (`KD` column).
    pub knowledge_distillation: bool,
    /// Bits inside the Winograd domain (8 for `int8`, 10 for `int8/10`).
    pub wino_bits: u8,
}

impl AblationConfig {
    /// The FP32 / int8 im2col baseline row.
    pub fn baseline() -> Self {
        Self {
            kernel: ConvKernel::Im2col,
            winograd_aware: false,
            tapwise: false,
            power_of_two: false,
            learned_log2: false,
            knowledge_distillation: false,
            wino_bits: 8,
        }
    }

    /// The paper's best int8 configuration: F4, Winograd-aware, tap-wise,
    /// power-of-two, learned log2 scales, knowledge distillation.
    pub fn best_f4_int8() -> Self {
        Self {
            kernel: ConvKernel::F4,
            winograd_aware: true,
            tapwise: true,
            power_of_two: true,
            learned_log2: true,
            knowledge_distillation: true,
            wino_bits: 8,
        }
    }

    /// A short human-readable tag used in harness output.
    pub fn tag(&self) -> String {
        let mut parts = vec![match self.kernel {
            ConvKernel::Im2col => "im2col".to_string(),
            ConvKernel::F2 => "F2".to_string(),
            ConvKernel::F4 => "F4".to_string(),
        }];
        if self.winograd_aware {
            parts.push("WA".into());
        }
        if self.tapwise {
            parts.push("tapwise".into());
        }
        if self.power_of_two {
            parts.push("2x".into());
        }
        if self.learned_log2 {
            parts.push("log2t".into());
        }
        if self.knowledge_distillation {
            parts.push("KD".into());
        }
        parts.push(if self.wino_bits == 8 {
            "int8".into()
        } else {
            format!("int8/{}", self.wino_bits)
        });
        parts.join("+")
    }

    fn scale_mode(&self) -> ScaleMode {
        if self.power_of_two {
            ScaleMode::PowerOfTwo
        } else {
            ScaleMode::Float
        }
    }

    fn quant_config(&self, tile: TileSize) -> WinogradQuantConfig {
        WinogradQuantConfig {
            tile,
            spatial_bits: QuantBits::int8(),
            wino_bits: QuantBits::new(self.wino_bits),
            tapwise: self.tapwise,
            mode: self.scale_mode(),
        }
    }
}

/// Hyper-parameters of one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainerOptions {
    /// Image edge length of the synthetic task.
    pub image_size: usize,
    /// Number of training samples.
    pub train_samples: usize,
    /// Number of held-out test samples.
    pub test_samples: usize,
    /// Base channel width of the small CNN.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Epochs for the FP32 baseline.
    pub baseline_epochs: usize,
    /// Epochs for the quantized retraining.
    pub retrain_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate (SGD).
    pub learning_rate: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Distillation temperature.
    pub kd_temperature: f32,
    /// Distillation weight α.
    pub kd_alpha: f32,
    /// RNG seed for data and initialisation.
    pub seed: u64,
}

impl Default for TrainerOptions {
    fn default() -> Self {
        Self {
            image_size: 12,
            train_samples: 512,
            test_samples: 256,
            width: 8,
            classes: 10,
            baseline_epochs: 4,
            retrain_epochs: 3,
            batch_size: 32,
            learning_rate: 0.05,
            weight_decay: 1e-4,
            kd_temperature: 3.0,
            kd_alpha: 0.7,
            seed: 17,
        }
    }
}

impl TrainerOptions {
    /// A very small configuration used by unit tests (seconds, not minutes).
    pub fn tiny() -> Self {
        Self {
            image_size: 8,
            train_samples: 160,
            test_samples: 64,
            width: 6,
            classes: 4,
            baseline_epochs: 16,
            retrain_epochs: 2,
            batch_size: 20,
            learning_rate: 0.06,
            ..Self::default()
        }
    }
}

/// Result of one ablation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainOutcome {
    /// The configuration that was trained.
    pub config: AblationConfig,
    /// Test accuracy of the FP32 baseline (the `Ref.` column).
    pub baseline_accuracy: f32,
    /// Test accuracy of the quantized network.
    pub quantized_accuracy: f32,
    /// Training accuracy of the quantized network at the end of retraining.
    pub train_accuracy: f32,
}

impl TrainOutcome {
    /// Accuracy delta versus the baseline (the `∆` column of Table II).
    pub fn delta(&self) -> f32 {
        self.quantized_accuracy - self.baseline_accuracy
    }
}

/// Shared experiment state so that several ablation rows reuse the same
/// baseline network and dataset (as the paper reuses one pre-trained model).
#[derive(Debug, Clone)]
pub struct Experiment {
    options: TrainerOptions,
    train: Dataset,
    test: Dataset,
    baseline: SmallCnn,
    baseline_accuracy: f32,
}

impl Experiment {
    /// Generates the dataset and trains the FP32 baseline once.
    pub fn prepare(options: TrainerOptions) -> Self {
        let task = SyntheticImageTask {
            size: options.image_size,
            classes: options.classes,
            noise: 0.25,
        };
        let train = task.generate(options.train_samples, options.seed);
        let test = task.generate(options.test_samples, options.seed + 1);
        let mut baseline = SmallCnn::new(3, options.width, options.classes, options.seed + 100);
        train_epochs(
            &mut baseline,
            &train,
            options.baseline_epochs,
            options,
            None,
        );
        let baseline_accuracy = evaluate(&mut baseline, &test, options.batch_size);
        Self {
            options,
            train,
            test,
            baseline,
            baseline_accuracy,
        }
    }

    /// The FP32 baseline accuracy on the test split.
    pub fn baseline_accuracy(&self) -> f32 {
        self.baseline_accuracy
    }

    /// Runs one ablation configuration, reusing the shared baseline.
    pub fn run(&self, config: AblationConfig) -> TrainOutcome {
        let options = self.options;
        // Start every configuration from the FP32 baseline weights, as the
        // paper retrains from the pre-trained model.
        let mut student = self.baseline.clone();

        if let Some(tile) = config.kernel.tile() {
            configure_quantized(&mut student, &self.train, &config, tile, options);
        }

        let mut teacher = if config.knowledge_distillation {
            Some(self.baseline.clone())
        } else {
            None
        };

        let mut train_accuracy = evaluate(&mut student, &self.train, options.batch_size);
        if config.kernel.tile().is_none() || config.winograd_aware {
            // Retraining (for im2col this is just continued int8-friendly
            // fine-tuning; for Winograd kernels this is Winograd-aware training).
            for _ in 0..options.retrain_epochs {
                train_one_epoch(
                    &mut student,
                    &self.train,
                    options,
                    teacher.as_mut(),
                    &config,
                );
                if config.kernel.tile().is_some() {
                    // Re-calibrate after each epoch so the scales track the
                    // updated weights; with learned log2 scales refine them with
                    // the Eq. 3 gradient instead of resetting.
                    if let Some(tile) = config.kernel.tile() {
                        recalibrate(&mut student, &self.train, &config, tile, options);
                    }
                }
            }
            train_accuracy = evaluate(&mut student, &self.train, options.batch_size);
        }

        let quantized_accuracy = evaluate(&mut student, &self.test, options.batch_size);
        TrainOutcome {
            config,
            baseline_accuracy: self.baseline_accuracy,
            quantized_accuracy,
            train_accuracy,
        }
    }
}

/// Convenience wrapper: prepares a fresh experiment and runs a single
/// configuration. Prefer [`Experiment`] when sweeping many rows.
pub fn train_config(config: AblationConfig, options: TrainerOptions) -> TrainOutcome {
    Experiment::prepare(options).run(config)
}

fn configure_quantized(
    net: &mut SmallCnn,
    train: &Dataset,
    config: &AblationConfig,
    tile: TileSize,
    options: TrainerOptions,
) {
    let (sample, _) = train.batch(0, options.batch_size.min(train.len()));
    let qcfg = config.quant_config(tile);
    let mats = WinogradMatrices::for_tile(tile);
    // Calibrate layer by layer with the activations produced by the layers
    // before it (run the truncated forward on the sample).
    let activations = layer_inputs(net, &sample);
    for (conv, act) in net.convs_mut().into_iter().zip(activations.iter()) {
        let scales = if config.tapwise {
            TapwiseScales::calibrate(&conv.weight, act, &mats, qcfg.wino_bits, qcfg.mode)
        } else {
            TapwiseScales::calibrate_uniform(&conv.weight, act, &mats, qcfg.wino_bits, qcfg.mode)
        };
        let scales = if config.learned_log2 {
            refine_scales(&conv.weight, act, scales, &mats, qcfg)
        } else {
            scales
        };
        conv.algorithm = ConvAlgorithm::WinogradQuantized {
            config: qcfg,
            scales,
            input_max: act.abs_max(),
        };
    }
}

fn recalibrate(
    net: &mut SmallCnn,
    train: &Dataset,
    config: &AblationConfig,
    tile: TileSize,
    options: TrainerOptions,
) {
    configure_quantized(net, train, config, tile, options);
}

/// Runs the network up to (but not including) each convolution to obtain the
/// activation tensors used for calibration.
fn layer_inputs(net: &SmallCnn, sample: &Tensor<f32>) -> [Tensor<f32>; 3] {
    use crate::layers::{avg_pool2_forward, relu_forward};
    let mut probe = net.clone();
    let y1 = probe.conv1.forward(sample);
    let (a1, _) = relu_forward(&y1);
    let y2 = probe.conv2.forward(&a1);
    let (a2, _) = relu_forward(&y2);
    let p = avg_pool2_forward(&a2);
    [sample.clone(), a1, p]
}

/// Refines calibrated scales with a few steps of the learned log2-scale
/// gradient (Eq. 3), minimising the Winograd-domain reconstruction error of the
/// transformed weights. This stands in for the full in-loop scale training of
/// the paper (see DESIGN.md §3).
fn refine_scales(
    weights: &Tensor<f32>,
    _input_sample: &Tensor<f32>,
    scales: TapwiseScales,
    mats: &WinogradMatrices,
    qcfg: WinogradQuantConfig,
) -> TapwiseScales {
    let t = mats.input_tile();
    let (c_out, c_in) = (weights.dims()[0], weights.dims()[1]);
    // Gather the transformed weight taps as a [count, t, t] stack.
    let mut stack = Tensor::<f32>::zeros(&[c_out * c_in, t, t]);
    for co in 0..c_out {
        for ci in 0..c_in {
            let mut k = Tensor::<f32>::zeros(&[3, 3]);
            for ky in 0..3 {
                for kx in 0..3 {
                    k.set2(ky, kx, weights.at4(co, ci, ky, kx));
                }
            }
            let u = wino_core::weight_transform(&k, mats);
            for r in 0..t {
                for c in 0..t {
                    stack.set(&[co * c_in + ci, r, c], u.at2(r, c));
                }
            }
        }
    }
    let mut learned = LearnedTapScales::from_initial(&scales.weight, 0.02);
    for _ in 0..10 {
        // Upstream gradient of the reconstruction loss ½(q(x) − x)²: q(x) − x.
        let eff = learned.effective_scales();
        let count = stack.dims()[0];
        let mut upstream = Tensor::<f32>::zeros(stack.dims());
        for i in 0..count {
            for r in 0..t {
                for c in 0..t {
                    let x = stack.at(&[i, r, c]);
                    let s = eff.scale(r, c);
                    let q = (x / s).round().clamp(
                        qcfg.wino_bits.min_value() as f32,
                        qcfg.wino_bits.max_value() as f32,
                    ) * s;
                    upstream.set(&[i, r, c], q - x);
                }
            }
        }
        let grad = learned.scale_gradient(&stack, &upstream);
        learned.step(&grad);
    }
    TapwiseScales {
        input: scales.input,
        weight: learned.effective_scales(),
    }
}

fn train_one_epoch(
    net: &mut SmallCnn,
    train: &Dataset,
    options: TrainerOptions,
    mut teacher: Option<&mut SmallCnn>,
    config: &AblationConfig,
) {
    let mut start = 0usize;
    while start < train.len() {
        let (batch, labels) = train.batch(start, options.batch_size);
        start += options.batch_size;
        let logits = net.forward(&batch);
        let d_logits = if let Some(t) = teacher.as_deref_mut() {
            let teacher_logits = t.forward(&batch);
            let (_, grad) = distillation_loss(
                &logits,
                &teacher_logits,
                &labels,
                options.kd_temperature,
                options.kd_alpha,
            );
            grad
        } else {
            softmax_cross_entropy_backward(&logits, &labels)
        };
        let grads = net.backward(&d_logits);
        net.apply_sgd(&grads, options.learning_rate, options.weight_decay);
        let _ = config; // configuration only affects forward algorithm / loss above
    }
}

fn train_epochs(
    net: &mut SmallCnn,
    train: &Dataset,
    epochs: usize,
    options: TrainerOptions,
    teacher: Option<&mut SmallCnn>,
) {
    let mut teacher = teacher;
    for _ in 0..epochs {
        let mut start = 0usize;
        while start < train.len() {
            let (batch, labels) = train.batch(start, options.batch_size);
            start += options.batch_size;
            let logits = net.forward(&batch);
            let d_logits = if let Some(t) = teacher.as_deref_mut() {
                let teacher_logits = t.forward(&batch);
                let (_, grad) = distillation_loss(
                    &logits,
                    &teacher_logits,
                    &labels,
                    options.kd_temperature,
                    options.kd_alpha,
                );
                grad
            } else {
                softmax_cross_entropy_backward(&logits, &labels)
            };
            let grads = net.backward(&d_logits);
            net.apply_sgd(&grads, options.learning_rate, options.weight_decay);
        }
    }
}

/// Evaluates Top-1 accuracy over a dataset, batching the forward passes.
pub fn evaluate(net: &mut SmallCnn, data: &Dataset, batch_size: usize) -> f32 {
    let mut correct_weighted = 0.0_f32;
    let mut total = 0usize;
    let mut start = 0usize;
    while start < data.len() {
        let (batch, labels) = data.batch(start, batch_size);
        start += batch_size;
        let logits = net.forward(&batch);
        correct_weighted += accuracy(&logits, &labels) * labels.len() as f32;
        total += labels.len();
    }
    if total == 0 {
        0.0
    } else {
        correct_weighted / total as f32
    }
}

/// Sanity-check helper exposed for the harness: cross-entropy of a model on a
/// dataset (useful to verify that retraining reduced the loss).
pub fn dataset_loss(net: &mut SmallCnn, data: &Dataset, batch_size: usize) -> f32 {
    let mut loss = 0.0_f32;
    let mut batches = 0usize;
    let mut start = 0usize;
    while start < data.len() {
        let (batch, labels) = data.batch(start, batch_size);
        start += batch_size;
        let logits = net.forward(&batch);
        loss += cross_entropy(&logits, &labels);
        batches += 1;
    }
    loss / batches.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_learns_above_chance() {
        let exp = Experiment::prepare(TrainerOptions::tiny());
        let chance = 1.0 / TrainerOptions::tiny().classes as f32;
        assert!(
            exp.baseline_accuracy() > chance + 0.08,
            "baseline accuracy {} not above chance {chance}",
            exp.baseline_accuracy()
        );
    }

    #[test]
    fn winograd_aware_f4_recovers_over_post_training_quantization() {
        let exp = Experiment::prepare(TrainerOptions::tiny());
        let ptq = AblationConfig {
            kernel: ConvKernel::F4,
            winograd_aware: false,
            tapwise: false,
            power_of_two: false,
            learned_log2: false,
            knowledge_distillation: false,
            wino_bits: 8,
        };
        let wa_tapwise = AblationConfig {
            kernel: ConvKernel::F4,
            winograd_aware: true,
            tapwise: true,
            power_of_two: true,
            learned_log2: false,
            knowledge_distillation: false,
            wino_bits: 8,
        };
        let out_ptq = exp.run(ptq);
        let out_wa = exp.run(wa_tapwise);
        assert!(
            out_wa.quantized_accuracy >= out_ptq.quantized_accuracy - 0.15,
            "winograd-aware tap-wise ({}) should not be clearly worse than naive PTQ ({})",
            out_wa.quantized_accuracy,
            out_ptq.quantized_accuracy
        );
        // Both runs must produce valid accuracies.
        assert!((0.0..=1.0).contains(&out_wa.quantized_accuracy));
        assert!((0.0..=1.0).contains(&out_ptq.quantized_accuracy));
    }

    #[test]
    fn config_tags_are_descriptive() {
        assert_eq!(AblationConfig::baseline().tag(), "im2col+int8");
        let best = AblationConfig::best_f4_int8();
        let tag = best.tag();
        assert!(tag.contains("F4") && tag.contains("KD") && tag.contains("tapwise"));
        assert_eq!(best.kernel.tile(), Some(TileSize::F4));
    }

    #[test]
    fn outcome_delta_is_quantized_minus_baseline() {
        let o = TrainOutcome {
            config: AblationConfig::baseline(),
            baseline_accuracy: 0.9,
            quantized_accuracy: 0.85,
            train_accuracy: 0.95,
        };
        assert!((o.delta() + 0.05).abs() < 1e-6);
    }
}
