//! Optimisers.
//!
//! The paper trains the network weights with SGD and the learned log2 scaling
//! factors with Adam ("we are using the Adam optimizer with its built-in
//! gradient normalization, β1 = 0.9, β2 = 0.99", Section III-B).

use wino_tensor::Tensor;

/// A first-order optimiser updating one parameter tensor in place.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step given the gradient of the parameter.
    ///
    /// # Panics
    ///
    /// Implementations panic if the gradient shape differs from the parameter.
    fn step(&mut self, param: &mut Tensor<f32>, grad: &Tensor<f32>);
}

/// Stochastic gradient descent with momentum and weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    velocity: Option<Tensor<f32>>,
}

impl Sgd {
    /// Creates an SGD optimiser.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: None,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, param: &mut Tensor<f32>, grad: &Tensor<f32>) {
        assert_eq!(param.dims(), grad.dims(), "Sgd::step shape mismatch");
        let g = if self.weight_decay > 0.0 {
            grad.add(&param.scale(self.weight_decay))
        } else {
            grad.clone()
        };
        let update = if self.momentum > 0.0 {
            let v = match &self.velocity {
                Some(v) => v.scale(self.momentum).add(&g),
                None => g.clone(),
            };
            self.velocity = Some(v.clone());
            v
        } else {
            g
        };
        for (p, u) in param.as_mut_slice().iter_mut().zip(update.as_slice()) {
            *p -= self.lr * u;
        }
    }
}

/// Adam optimiser (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    m: Option<Tensor<f32>>,
    v: Option<Tensor<f32>>,
    t: u32,
}

impl Adam {
    /// Creates an Adam optimiser with the paper's scale-training betas
    /// (β1 = 0.9, β2 = 0.99) unless overridden.
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.99)
    }

    /// Creates an Adam optimiser with explicit betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            m: None,
            v: None,
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, param: &mut Tensor<f32>, grad: &Tensor<f32>) {
        assert_eq!(param.dims(), grad.dims(), "Adam::step shape mismatch");
        self.t += 1;
        let m_prev = self.m.take().unwrap_or_else(|| Tensor::zeros(grad.dims()));
        let v_prev = self.v.take().unwrap_or_else(|| Tensor::zeros(grad.dims()));
        let m = m_prev.scale(self.beta1).add(&grad.scale(1.0 - self.beta1));
        let v = v_prev
            .scale(self.beta2)
            .add(&grad.mul(grad).scale(1.0 - self.beta2));
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, &mi), &vi) in param
            .as_mut_slice()
            .iter_mut()
            .zip(m.as_slice())
            .zip(v.as_slice())
        {
            let m_hat = mi / bc1;
            let v_hat = vi / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
        self.m = Some(m);
        self.v = Some(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = ||x - target||² and check convergence.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let target = Tensor::from_vec(vec![1.0_f32, -2.0, 0.5], &[3]).unwrap();
        let mut x = Tensor::<f32>::zeros(&[3]);
        for _ in 0..steps {
            let grad = x.sub(&target).scale(2.0);
            opt.step(&mut x, &grad);
        }
        x.sub(&target).as_slice().iter().map(|v| v * v).sum::<f32>()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        assert!(minimise(&mut opt, 200) < 1e-6);
    }

    #[test]
    fn sgd_with_momentum_converges_faster_than_without() {
        let mut plain = Sgd::new(0.02, 0.0, 0.0);
        let mut momentum = Sgd::new(0.02, 0.9, 0.0);
        let loss_plain = minimise(&mut plain, 50);
        let loss_momentum = minimise(&mut momentum, 50);
        assert!(loss_momentum < loss_plain);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        let mut p = Tensor::from_vec(vec![1.0_f32], &[1]).unwrap();
        let zero_grad = Tensor::<f32>::zeros(&[1]);
        for _ in 0..10 {
            opt.step(&mut p, &zero_grad);
        }
        assert!(p.as_slice()[0] < 1.0 && p.as_slice()[0] > 0.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        assert!(minimise(&mut opt, 300) < 1e-4);
    }

    #[test]
    fn adam_normalises_gradient_magnitude() {
        // With very different gradient scales Adam still makes progress on both
        // coordinates — the property the paper relies on for scale training.
        let mut opt = Adam::new(0.05);
        let mut x = Tensor::from_vec(vec![0.0_f32, 0.0], &[2]).unwrap();
        for _ in 0..200 {
            // d/dx of 1000*(x0-1)^2 + 0.001*(x1-1)^2
            let grad = Tensor::from_vec(
                vec![
                    2000.0 * (x.as_slice()[0] - 1.0),
                    0.002 * (x.as_slice()[1] - 1.0),
                ],
                &[2],
            )
            .unwrap();
            opt.step(&mut x, &grad);
        }
        assert!((x.as_slice()[0] - 1.0).abs() < 0.05);
        assert!(
            (x.as_slice()[1] - 1.0).abs() < 0.6,
            "slow coordinate should still move: {:?}",
            x
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut p = Tensor::<f32>::zeros(&[2]);
        let g = Tensor::<f32>::zeros(&[3]);
        opt.step(&mut p, &g);
    }
}
