//! Procedurally generated image-classification dataset.
//!
//! The paper trains on CIFAR-10 and ImageNet. Those datasets (and the
//! pre-trained Torchvision checkpoints) are not available here, so the
//! accuracy-trend experiments run on a synthetic task with the same structure:
//! small RGB images, ten classes, and enough intra-class variation (random
//! phase, position, noise) that a CNN has to learn non-trivial features. The
//! relative behaviour of the quantization schemes — which is what Tables II
//! and III compare — is preserved; absolute accuracies are not comparable to
//! ImageNet numbers (see DESIGN.md §3).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wino_tensor::Tensor;

/// A labelled set of NCHW images.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, `[count, 3, size, size]`.
    pub images: Tensor<f32>,
    /// Class labels in `0..classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies a contiguous batch `[start, start + size)` (clamped to the end)
    /// into a new tensor plus label vector.
    pub fn batch(&self, start: usize, size: usize) -> (Tensor<f32>, Vec<usize>) {
        let end = (start + size).min(self.len());
        assert!(start < end, "batch out of range");
        let (c, h, w) = (
            self.images.dims()[1],
            self.images.dims()[2],
            self.images.dims()[3],
        );
        let count = end - start;
        let plane = c * h * w;
        let mut data = Vec::with_capacity(count * plane);
        data.extend_from_slice(&self.images.as_slice()[start * plane..end * plane]);
        (
            Tensor::from_vec(data, &[count, c, h, w]).expect("batch shape"),
            self.labels[start..end].to_vec(),
        )
    }
}

/// Generator of the synthetic ten-class image task.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticImageTask {
    /// Spatial edge length of the square images.
    pub size: usize,
    /// Number of classes (at most 10).
    pub classes: usize,
    /// Standard deviation of the additive Gaussian pixel noise.
    pub noise: f32,
}

impl Default for SyntheticImageTask {
    fn default() -> Self {
        Self {
            size: 12,
            classes: 10,
            noise: 0.25,
        }
    }
}

impl SyntheticImageTask {
    /// Generates `count` labelled images with a deterministic seed.
    ///
    /// Each class is a distinct spatial pattern family (oriented stripes of
    /// several frequencies, checkerboards, radial blobs, corner gradients)
    /// modulated per-sample by a random phase, amplitude and channel mix, plus
    /// additive noise.
    #[allow(clippy::needless_range_loop)] // index-heavy math reads clearer with explicit loops
    pub fn generate(&self, count: usize, seed: u64) -> Dataset {
        assert!(
            self.classes >= 2 && self.classes <= 10,
            "classes must be in 2..=10"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (s, c) = (self.size, 3usize);
        let mut images = Tensor::<f32>::zeros(&[count, c, s, s]);
        let mut labels = Vec::with_capacity(count);
        for n in 0..count {
            let label = rng.gen_range(0..self.classes);
            labels.push(label);
            let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let amp: f32 = rng.gen_range(0.7..1.3);
            let cx: f32 = rng.gen_range(0.25_f32..0.75) * s as f32;
            let cy: f32 = rng.gen_range(0.25_f32..0.75) * s as f32;
            let channel_mix: [f32; 3] = [
                rng.gen_range(0.5..1.0),
                rng.gen_range(0.5..1.0),
                rng.gen_range(0.5..1.0),
            ];
            for ch in 0..c {
                for y in 0..s {
                    for x in 0..s {
                        let (xf, yf) = (x as f32, y as f32);
                        let v = match label {
                            // Horizontal / vertical / diagonal stripes at two frequencies.
                            0 => (0.6 * xf + phase).sin(),
                            1 => (0.6 * yf + phase).sin(),
                            2 => (0.45 * (xf + yf) + phase).sin(),
                            3 => (0.45 * (xf - yf) + phase).sin(),
                            4 => (1.2 * xf + phase).sin(),
                            // Checkerboard.
                            5 => {
                                if ((x / 2) + (y / 2)) % 2 == 0 {
                                    1.0
                                } else {
                                    -1.0
                                }
                            }
                            // Radial blob / ring around a random centre.
                            6 => {
                                let d = ((xf - cx).powi(2) + (yf - cy).powi(2)).sqrt();
                                (-d * d / (0.12 * (s * s) as f32)).exp() * 2.0 - 1.0
                            }
                            7 => {
                                let d = ((xf - cx).powi(2) + (yf - cy).powi(2)).sqrt();
                                (0.9 * d + phase).sin()
                            }
                            // Corner gradients.
                            8 => 2.0 * (xf * yf) / ((s * s) as f32) - 1.0,
                            _ => 2.0 * ((s as f32 - xf) * yf) / ((s * s) as f32) - 1.0,
                        };
                        let noise = self.noise * sample_normal(&mut rng);
                        images.set4(n, ch, y, x, amp * channel_mix[ch] * v + noise);
                    }
                }
            }
        }
        Dataset {
            images,
            labels,
            classes: self.classes,
        }
    }
}

fn sample_normal(rng: &mut ChaCha8Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape_and_labels() {
        let task = SyntheticImageTask {
            size: 8,
            classes: 10,
            noise: 0.1,
        };
        let d = task.generate(50, 1);
        assert_eq!(d.images.dims(), &[50, 3, 8, 8]);
        assert_eq!(d.len(), 50);
        assert!(d.labels.iter().all(|&l| l < 10));
        assert!(!d.is_empty());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let task = SyntheticImageTask::default();
        let a = task.generate(10, 7);
        let b = task.generate(10, 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        let c = task.generate(10, 8);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    fn all_classes_appear_in_a_large_sample() {
        let task = SyntheticImageTask::default();
        let d = task.generate(500, 3);
        for class in 0..10 {
            assert!(d.labels.contains(&class), "class {class} missing");
        }
    }

    #[test]
    fn batching_slices_images_and_labels_consistently() {
        let task = SyntheticImageTask {
            size: 6,
            classes: 4,
            noise: 0.0,
        };
        let d = task.generate(20, 5);
        let (imgs, labels) = d.batch(4, 8);
        assert_eq!(imgs.dims(), &[8, 3, 6, 6]);
        assert_eq!(labels, d.labels[4..12].to_vec());
        assert_eq!(imgs.at4(0, 0, 0, 0), d.images.at4(4, 0, 0, 0));
        // Clamped final batch.
        let (tail, tl) = d.batch(16, 8);
        assert_eq!(tail.dims()[0], 4);
        assert_eq!(tl.len(), 4);
    }

    #[test]
    fn pixel_values_are_bounded() {
        let task = SyntheticImageTask {
            size: 10,
            classes: 10,
            noise: 0.2,
        };
        let d = task.generate(100, 11);
        assert!(d.images.abs_max() < 6.0);
    }
}
