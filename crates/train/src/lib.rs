//! Winograd-aware quantized training substrate.
//!
//! The paper's accuracy results (Tables II and III) come from retraining
//! networks with the quantized Winograd forward pass in the loop
//! ("Winograd-aware training"), learned power-of-two tap scales (via a
//! straight-through estimator on the log2 of the scale, Eq. 3) and knowledge
//! distillation from the FP32 baseline. This crate rebuilds that training
//! methodology from scratch:
//!
//! * a small CNN with hand-derived backpropagation ([`layers`], [`model`]),
//! * SGD and Adam optimisers ([`optim`]),
//! * the straight-through estimator and the learned log2-scale gradient
//!   ([`ste`]),
//! * knowledge distillation with tempered softmax + KL divergence
//!   ([`distill`]),
//! * a procedurally generated classification dataset standing in for
//!   CIFAR-10/ImageNet ([`dataset`]; see DESIGN.md for the substitution
//!   rationale),
//! * the end-to-end training loop with every Table-II configuration
//!   ([`trainer`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod distill;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod ste;
pub mod trainer;

pub use dataset::{Dataset, SyntheticImageTask};
pub use distill::distillation_loss;
pub use layers::{Conv3x3, ConvAlgorithm, Linear};
pub use loss::{cross_entropy, softmax_cross_entropy_backward};
pub use metrics::accuracy;
pub use model::SmallCnn;
pub use optim::{Adam, Optimizer, Sgd};
pub use ste::{learned_log2_scale_gradient, LearnedTapScales};
pub use trainer::{train_config, AblationConfig, ConvKernel, TrainOutcome, TrainerOptions};
