//! The small CNN used for the accuracy-trend experiments.
//!
//! A scaled-down ResNet-20-style all-3×3 network: three convolution stages with
//! ReLU, one 2×2 average pool between stages, global average pooling and a
//! linear classifier. Every convolution is 3×3 / stride 1 / same padding, so
//! every convolution is Winograd-eligible — exactly the layers the paper's
//! method targets.

use crate::layers::{
    avg_pool2_backward, avg_pool2_forward, global_avg_pool_backward, global_avg_pool_forward,
    relu_backward, relu_forward, Conv3x3, ConvAlgorithm, Linear,
};
use crate::optim::{Optimizer, Sgd};
use wino_tensor::Tensor;

/// A three-stage all-3×3 CNN classifier with hand-derived backprop.
#[derive(Debug, Clone)]
pub struct SmallCnn {
    /// First convolution (input channels → `width`).
    pub conv1: Conv3x3,
    /// Second convolution (`width` → `width`).
    pub conv2: Conv3x3,
    /// Third convolution (`width` → `2·width`), after the pool.
    pub conv3: Conv3x3,
    /// Final classifier.
    pub fc: Linear,
    // Caches for backward.
    cache: Option<ForwardCache>,
}

#[derive(Debug, Clone)]
struct ForwardCache {
    mask1: Tensor<f32>,
    mask2: Tensor<f32>,
    mask3: Tensor<f32>,
    pre_pool_dims: Vec<usize>,
    pre_gap_dims: Vec<usize>,
}

/// All parameter gradients of [`SmallCnn`].
#[derive(Debug, Clone)]
pub struct SmallCnnGrads {
    /// Gradients of `conv1` (weight, bias).
    pub conv1: (Tensor<f32>, Tensor<f32>),
    /// Gradients of `conv2`.
    pub conv2: (Tensor<f32>, Tensor<f32>),
    /// Gradients of `conv3`.
    pub conv3: (Tensor<f32>, Tensor<f32>),
    /// Gradients of the classifier.
    pub fc: (Tensor<f32>, Tensor<f32>),
}

impl SmallCnn {
    /// Creates the network for `in_channels`-channel inputs, `classes` outputs
    /// and a base width of `width` channels.
    pub fn new(in_channels: usize, width: usize, classes: usize, seed: u64) -> Self {
        Self {
            conv1: Conv3x3::new(in_channels, width, seed),
            conv2: Conv3x3::new(width, width, seed + 1),
            conv3: Conv3x3::new(width, 2 * width, seed + 2),
            fc: Linear::new(2 * width, classes, seed + 3),
            cache: None,
        }
    }

    /// Sets the convolution algorithm of all three convolution layers.
    pub fn set_algorithm(&mut self, alg: &dyn Fn(usize) -> ConvAlgorithm) {
        self.conv1.algorithm = alg(0);
        self.conv2.algorithm = alg(1);
        self.conv3.algorithm = alg(2);
    }

    /// Mutable access to the three convolution layers (for recalibration).
    pub fn convs_mut(&mut self) -> [&mut Conv3x3; 3] {
        [&mut self.conv1, &mut self.conv2, &mut self.conv3]
    }

    /// Forward pass producing `[batch, classes]` logits.
    pub fn forward(&mut self, x: &Tensor<f32>) -> Tensor<f32> {
        let y1 = self.conv1.forward(x);
        let (a1, mask1) = relu_forward(&y1);
        let y2 = self.conv2.forward(&a1);
        let (a2, mask2) = relu_forward(&y2);
        let pre_pool_dims = a2.dims().to_vec();
        let p = avg_pool2_forward(&a2);
        let y3 = self.conv3.forward(&p);
        let (a3, mask3) = relu_forward(&y3);
        let pre_gap_dims = a3.dims().to_vec();
        let g = global_avg_pool_forward(&a3);
        let logits = self.fc.forward(&g);
        self.cache = Some(ForwardCache {
            mask1,
            mask2,
            mask3,
            pre_pool_dims,
            pre_gap_dims,
        });
        logits
    }

    /// Backward pass from the gradient of the logits; returns all parameter
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, d_logits: &Tensor<f32>) -> SmallCnnGrads {
        let cache = self
            .cache
            .take()
            .expect("SmallCnn::backward called before forward");
        let fc_grads = self.fc.backward(d_logits);
        let d_gap = global_avg_pool_backward(&fc_grads.input, &cache.pre_gap_dims);
        let d_a3 = relu_backward(&d_gap, &cache.mask3);
        let conv3_grads = self.conv3.backward(&d_a3);
        let d_pool = avg_pool2_backward(&conv3_grads.input, &cache.pre_pool_dims);
        let d_a2 = relu_backward(&d_pool, &cache.mask2);
        let conv2_grads = self.conv2.backward(&d_a2);
        let d_a1 = relu_backward(&conv2_grads.input, &cache.mask1);
        let conv1_grads = self.conv1.backward(&d_a1);
        SmallCnnGrads {
            conv1: (conv1_grads.weight, conv1_grads.bias),
            conv2: (conv2_grads.weight, conv2_grads.bias),
            conv3: (conv3_grads.weight, conv3_grads.bias),
            fc: (fc_grads.weight, fc_grads.bias),
        }
    }

    /// Applies one SGD step to every parameter with a shared optimiser
    /// configuration (fresh momentum state per call is acceptable for the small
    /// experiments; the trainer keeps longer-lived optimisers).
    pub fn apply_sgd(&mut self, grads: &SmallCnnGrads, lr: f32, weight_decay: f32) {
        let mut opt = Sgd::new(lr, 0.0, weight_decay);
        opt.step(&mut self.conv1.weight, &grads.conv1.0);
        opt.step(&mut self.conv1.bias, &grads.conv1.1);
        opt.step(&mut self.conv2.weight, &grads.conv2.0);
        opt.step(&mut self.conv2.bias, &grads.conv2.1);
        opt.step(&mut self.conv3.weight, &grads.conv3.0);
        opt.step(&mut self.conv3.bias, &grads.conv3.1);
        opt.step(&mut self.fc.weight, &grads.fc.0);
        opt.step(&mut self.fc.bias, &grads.fc.1);
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.conv1.weight.len()
            + self.conv1.bias.len()
            + self.conv2.weight.len()
            + self.conv2.bias.len()
            + self.conv3.weight.len()
            + self.conv3.bias.len()
            + self.fc.weight.len()
            + self.fc.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{cross_entropy, softmax_cross_entropy_backward};
    use wino_tensor::normal;

    #[test]
    fn forward_shapes_and_param_count() {
        let mut net = SmallCnn::new(3, 4, 10, 42);
        let x = normal(&[2, 3, 8, 8], 0.0, 1.0, 1);
        let logits = net.forward(&x);
        assert_eq!(logits.dims(), &[2, 10]);
        assert!(net.parameter_count() > 0);
    }

    #[test]
    fn a_few_sgd_steps_reduce_the_loss_on_a_fixed_batch() {
        let mut net = SmallCnn::new(3, 4, 4, 7);
        let x = normal(&[8, 3, 8, 8], 0.0, 1.0, 2);
        let labels = vec![0usize, 1, 2, 3, 0, 1, 2, 3];
        let logits0 = net.forward(&x);
        let loss0 = cross_entropy(&logits0, &labels);
        let mut loss_prev = loss0;
        for _ in 0..8 {
            let logits = net.forward(&x);
            loss_prev = cross_entropy(&logits, &labels);
            let d = softmax_cross_entropy_backward(&logits, &labels);
            let grads = net.backward(&d);
            net.apply_sgd(&grads, 0.05, 0.0);
        }
        let logits1 = net.forward(&x);
        let loss1 = cross_entropy(&logits1, &labels);
        assert!(
            loss1 < loss0,
            "loss did not decrease: {loss0} -> {loss1} (last {loss_prev})"
        );
    }

    #[test]
    fn backward_requires_forward() {
        let mut net = SmallCnn::new(3, 4, 4, 9);
        let d = Tensor::<f32>::zeros(&[1, 4]);
        assert!(std::panic::catch_unwind(move || {
            let _ = net.backward(&d);
        })
        .is_err());
    }
}
