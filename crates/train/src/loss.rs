//! Classification losses and their gradients.

use wino_tensor::{softmax_rows, Tensor};

/// Mean cross-entropy of a batch of logits `[batch, classes]` against integer
/// labels.
///
/// # Panics
///
/// Panics if a label is out of range or the batch sizes disagree.
pub fn cross_entropy(logits: &Tensor<f32>, labels: &[usize]) -> f32 {
    assert_eq!(
        logits.rank(),
        2,
        "cross_entropy: logits must be [batch, classes]"
    );
    assert_eq!(
        logits.dims()[0],
        labels.len(),
        "cross_entropy: batch mismatch"
    );
    let probs = softmax_rows(logits, 1.0);
    let classes = logits.dims()[1];
    let mut loss = 0.0;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        loss -= probs.at2(r, label).max(1e-12).ln();
    }
    loss / labels.len() as f32
}

/// Gradient of the mean softmax cross-entropy with respect to the logits:
/// `(softmax(z) - one_hot(y)) / batch`.
pub fn softmax_cross_entropy_backward(logits: &Tensor<f32>, labels: &[usize]) -> Tensor<f32> {
    assert_eq!(logits.dims()[0], labels.len(), "batch mismatch");
    let mut grad = softmax_rows(logits, 1.0);
    let batch = labels.len() as f32;
    for (r, &label) in labels.iter().enumerate() {
        let v = grad.at2(r, label) - 1.0;
        grad.set2(r, label, v);
    }
    grad.map(|v| v / batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(vec![10.0_f32, -10.0, -10.0, 10.0], &[2, 2]).unwrap();
        let loss = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3);
    }

    #[test]
    fn uniform_prediction_has_log_c_loss() {
        let logits = Tensor::<f32>::zeros(&[4, 10]);
        let loss = cross_entropy(&logits, &[0, 3, 7, 9]);
        assert!((loss - (10.0_f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.3_f32, -0.7, 1.2, 0.1, 0.0, -0.5], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let grad = softmax_cross_entropy_backward(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..logits.len() {
            let mut plus = logits.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[idx] -= eps;
            let num =
                (cross_entropy(&plus, &labels) - cross_entropy(&minus, &labels)) / (2.0 * eps);
            assert!(
                (num - grad.as_slice()[idx]).abs() < 1e-3,
                "grad mismatch at {idx}: analytic {} vs numeric {num}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0_f32, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let grad = softmax_cross_entropy_backward(&logits, &[0, 2]);
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| grad.at2(r, c)).sum();
            assert!(sum.abs() < 1e-6);
        }
    }
}
