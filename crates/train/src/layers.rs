//! Trainable layers with hand-derived backpropagation.
//!
//! The convolution layer can run its forward pass with three algorithms
//! (matching the `Alg.` column of Table II): the im2col/direct reference, the
//! FP32 Winograd algorithm, or the fake-quantized tap-wise Winograd pipeline.
//! The backward pass always uses the exact convolution gradients with the
//! straight-through estimator through every quantizer — the transforms are
//! linear, so the STE gradient of the quantized Winograd convolution equals the
//! plain convolution gradient (DESIGN.md §3 documents this approximation).

use wino_core::{
    winograd_conv2d, winograd_conv2d_fake_quant, TapwiseScales, TileSize, WinogradMatrices,
    WinogradQuantConfig,
};
use wino_tensor::{conv2d_direct, kaiming_normal, linear_forward, ConvParams, Tensor};

/// Which algorithm the convolution layer uses for its forward pass.
#[derive(Debug, Clone, PartialEq)]
pub enum ConvAlgorithm {
    /// Direct / im2col FP32 convolution (the paper's `im2col` baseline rows).
    Direct,
    /// FP32 Winograd convolution with the given tile size.
    Winograd(TileSize),
    /// Fake-quantized tap-wise Winograd convolution (Winograd-aware training).
    WinogradQuantized {
        /// Pipeline configuration (tile, bit-widths, tap-wise, scale mode).
        config: WinogradQuantConfig,
        /// Calibrated or learned tap-wise scales.
        scales: TapwiseScales,
        /// Calibrated maximum of the spatial input activations.
        input_max: f32,
    },
}

/// A 3×3, stride-1, same-padded convolution layer with bias.
#[derive(Debug, Clone)]
pub struct Conv3x3 {
    /// OIHW weights.
    pub weight: Tensor<f32>,
    /// Per-output-channel bias.
    pub bias: Tensor<f32>,
    /// Forward-pass algorithm.
    pub algorithm: ConvAlgorithm,
    cached_input: Option<Tensor<f32>>,
}

/// Gradients produced by [`Conv3x3::backward`].
#[derive(Debug, Clone)]
pub struct Conv3x3Grads {
    /// Gradient with respect to the weights.
    pub weight: Tensor<f32>,
    /// Gradient with respect to the bias.
    pub bias: Tensor<f32>,
    /// Gradient with respect to the layer input.
    pub input: Tensor<f32>,
}

impl Conv3x3 {
    /// Creates a Kaiming-initialised layer.
    pub fn new(c_in: usize, c_out: usize, seed: u64) -> Self {
        Self {
            weight: kaiming_normal(&[c_out, c_in, 3, 3], seed),
            bias: Tensor::<f32>::zeros(&[c_out]),
            algorithm: ConvAlgorithm::Direct,
            cached_input: None,
        }
    }

    /// Number of input channels.
    pub fn c_in(&self) -> usize {
        self.weight.dims()[1]
    }

    /// Number of output channels.
    pub fn c_out(&self) -> usize {
        self.weight.dims()[0]
    }

    /// Recalibrates the tap-wise scales of a quantized layer from the current
    /// weights and a representative input batch. No-op for other algorithms.
    pub fn recalibrate(&mut self, sample_input: &Tensor<f32>) {
        if let ConvAlgorithm::WinogradQuantized {
            config,
            scales,
            input_max,
        } = &mut self.algorithm
        {
            let mats = WinogradMatrices::for_tile(config.tile);
            *scales = if config.tapwise {
                TapwiseScales::calibrate(
                    &self.weight,
                    sample_input,
                    &mats,
                    config.wino_bits,
                    config.mode,
                )
            } else {
                TapwiseScales::calibrate_uniform(
                    &self.weight,
                    sample_input,
                    &mats,
                    config.wino_bits,
                    config.mode,
                )
            };
            *input_max = sample_input.abs_max();
        }
    }

    /// Forward pass; caches the input for the backward pass.
    pub fn forward(&mut self, x: &Tensor<f32>) -> Tensor<f32> {
        self.cached_input = Some(x.clone());
        let mut y = match &self.algorithm {
            ConvAlgorithm::Direct => conv2d_direct(x, &self.weight, None, ConvParams::same_3x3()),
            ConvAlgorithm::Winograd(tile) => winograd_conv2d(x, &self.weight, *tile),
            ConvAlgorithm::WinogradQuantized {
                config,
                scales,
                input_max,
            } => winograd_conv2d_fake_quant(x, &self.weight, config, scales, *input_max),
        };
        // Add the bias per output channel.
        let (n, c, h, w) = (y.dims()[0], y.dims()[1], y.dims()[2], y.dims()[3]);
        for ni in 0..n {
            for ci in 0..c {
                let b = self.bias.as_slice()[ci];
                for hi in 0..h {
                    for wi in 0..w {
                        let v = y.at4(ni, ci, hi, wi) + b;
                        y.set4(ni, ci, hi, wi, v);
                    }
                }
            }
        }
        y
    }

    /// Backward pass given the upstream gradient `dY` (same shape as the
    /// forward output). Uses the exact convolution gradients (STE through the
    /// quantizers).
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not been called or shapes mismatch.
    pub fn backward(&mut self, d_out: &Tensor<f32>) -> Conv3x3Grads {
        let x = self
            .cached_input
            .take()
            .expect("Conv3x3::backward called before forward");
        let (n, c_in, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let c_out = self.c_out();
        assert_eq!(
            d_out.dims(),
            &[n, c_out, h, w],
            "Conv3x3::backward: dY shape mismatch"
        );

        // dBias
        let mut d_bias = Tensor::<f32>::zeros(&[c_out]);
        for co in 0..c_out {
            let mut acc = 0.0;
            for ni in 0..n {
                for hi in 0..h {
                    for wi in 0..w {
                        acc += d_out.at4(ni, co, hi, wi);
                    }
                }
            }
            d_bias.as_mut_slice()[co] = acc;
        }

        // dW[co,ci,ky,kx] = sum_{n,oy,ox} dY[n,co,oy,ox] * X[n,ci,oy+ky-1,ox+kx-1]
        let mut d_w = Tensor::<f32>::zeros(self.weight.dims());
        for co in 0..c_out {
            for ci in 0..c_in {
                for ky in 0..3usize {
                    for kx in 0..3usize {
                        let mut acc = 0.0;
                        for ni in 0..n {
                            for oy in 0..h {
                                let iy = oy as isize + ky as isize - 1;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for ox in 0..w {
                                    let ix = ox as isize + kx as isize - 1;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    acc += d_out.at4(ni, co, oy, ox)
                                        * x.at4(ni, ci, iy as usize, ix as usize);
                                }
                            }
                        }
                        d_w.set4(co, ci, ky, kx, acc);
                    }
                }
            }
        }

        // dX = "full" correlation of dY with the 180°-rotated kernels, which for
        // same padding is: dX[n,ci,iy,ix] = sum_{co,ky,kx} dY[n,co,iy-ky+1,ix-kx+1] * W[co,ci,ky,kx]
        let mut d_x = Tensor::<f32>::zeros(x.dims());
        for ni in 0..n {
            for ci in 0..c_in {
                for iy in 0..h {
                    for ix in 0..w {
                        let mut acc = 0.0;
                        for co in 0..c_out {
                            for ky in 0..3usize {
                                let oy = iy as isize - (ky as isize - 1);
                                if oy < 0 || oy >= h as isize {
                                    continue;
                                }
                                for kx in 0..3usize {
                                    let ox = ix as isize - (kx as isize - 1);
                                    if ox < 0 || ox >= w as isize {
                                        continue;
                                    }
                                    acc += d_out.at4(ni, co, oy as usize, ox as usize)
                                        * self.weight.at4(co, ci, ky, kx);
                                }
                            }
                        }
                        d_x.set4(ni, ci, iy, ix, acc);
                    }
                }
            }
        }

        Conv3x3Grads {
            weight: d_w,
            bias: d_bias,
            input: d_x,
        }
    }
}

/// A fully connected layer with bias.
#[derive(Debug, Clone)]
pub struct Linear {
    /// `[out_features, in_features]` weights.
    pub weight: Tensor<f32>,
    /// Per-output bias.
    pub bias: Tensor<f32>,
    cached_input: Option<Tensor<f32>>,
}

/// Gradients produced by [`Linear::backward`].
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// Gradient with respect to the weights.
    pub weight: Tensor<f32>,
    /// Gradient with respect to the bias.
    pub bias: Tensor<f32>,
    /// Gradient with respect to the layer input.
    pub input: Tensor<f32>,
}

impl Linear {
    /// Creates a Kaiming-initialised fully connected layer.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Self {
            weight: kaiming_normal(&[out_features, in_features], seed),
            bias: Tensor::<f32>::zeros(&[out_features]),
            cached_input: None,
        }
    }

    /// Forward pass `y = x·Wᵀ + b`; caches the input.
    pub fn forward(&mut self, x: &Tensor<f32>) -> Tensor<f32> {
        self.cached_input = Some(x.clone());
        linear_forward(x, &self.weight, Some(&self.bias))
    }

    /// Backward pass given the upstream gradient `[batch, out_features]`.
    ///
    /// # Panics
    ///
    /// Panics if `forward` has not been called.
    pub fn backward(&mut self, d_out: &Tensor<f32>) -> LinearGrads {
        let x = self
            .cached_input
            .take()
            .expect("Linear::backward called before forward");
        let (batch, in_f) = (x.dims()[0], x.dims()[1]);
        let out_f = self.weight.dims()[0];
        assert_eq!(
            d_out.dims(),
            &[batch, out_f],
            "Linear::backward: dY shape mismatch"
        );

        let mut d_w = Tensor::<f32>::zeros(&[out_f, in_f]);
        let mut d_b = Tensor::<f32>::zeros(&[out_f]);
        let mut d_x = Tensor::<f32>::zeros(&[batch, in_f]);
        for r in 0..batch {
            for o in 0..out_f {
                let g = d_out.at2(r, o);
                d_b.as_mut_slice()[o] += g;
                for i in 0..in_f {
                    let v = d_w.at2(o, i) + g * x.at2(r, i);
                    d_w.set2(o, i, v);
                    let xv = d_x.at2(r, i) + g * self.weight.at2(o, i);
                    d_x.set2(r, i, xv);
                }
            }
        }
        LinearGrads {
            weight: d_w,
            bias: d_b,
            input: d_x,
        }
    }
}

/// ReLU forward that also returns the mask needed for the backward pass.
pub fn relu_forward(x: &Tensor<f32>) -> (Tensor<f32>, Tensor<f32>) {
    let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
    (x.map(|v| v.max(0.0)), mask)
}

/// ReLU backward: elementwise product of the upstream gradient with the mask.
pub fn relu_backward(d_out: &Tensor<f32>, mask: &Tensor<f32>) -> Tensor<f32> {
    d_out.mul(mask)
}

/// 2×2 average-pool forward over NCHW (stride 2).
pub fn avg_pool2_forward(x: &Tensor<f32>) -> Tensor<f32> {
    wino_tensor::avg_pool2d(x, 2, 2, 0)
}

/// Backward of the 2×2 average pool: spreads each output gradient equally over
/// its 2×2 input window.
pub fn avg_pool2_backward(d_out: &Tensor<f32>, input_dims: &[usize]) -> Tensor<f32> {
    let mut d_x = Tensor::<f32>::zeros(input_dims);
    let (n, c, ho, wo) = (
        d_out.dims()[0],
        d_out.dims()[1],
        d_out.dims()[2],
        d_out.dims()[3],
    );
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = d_out.at4(ni, ci, oy, ox) / 4.0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let iy = oy * 2 + dy;
                            let ix = ox * 2 + dx;
                            if iy < input_dims[2] && ix < input_dims[3] {
                                let v = d_x.at4(ni, ci, iy, ix) + g;
                                d_x.set4(ni, ci, iy, ix, v);
                            }
                        }
                    }
                }
            }
        }
    }
    d_x
}

/// Global average pooling forward: `[N, C, H, W] -> [N, C]`.
pub fn global_avg_pool_forward(x: &Tensor<f32>) -> Tensor<f32> {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let mut y = Tensor::<f32>::zeros(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let mut acc = 0.0;
            for hi in 0..h {
                for wi in 0..w {
                    acc += x.at4(ni, ci, hi, wi);
                }
            }
            y.set2(ni, ci, acc / (h * w) as f32);
        }
    }
    y
}

/// Backward of the global average pool.
pub fn global_avg_pool_backward(d_out: &Tensor<f32>, input_dims: &[usize]) -> Tensor<f32> {
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    let mut d_x = Tensor::<f32>::zeros(input_dims);
    let scale = 1.0 / (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let g = d_out.at2(ni, ci) * scale;
            for hi in 0..h {
                for wi in 0..w {
                    d_x.set4(ni, ci, hi, wi, g);
                }
            }
        }
    }
    d_x
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_tensor::normal;

    /// Numerically checks dL/dW for a scalar loss L = sum(Y ⊙ R) with random R.
    #[test]
    fn conv_weight_gradient_matches_finite_differences() {
        let x = normal(&[1, 2, 5, 5], 0.0, 1.0, 301);
        let r = normal(&[1, 3, 5, 5], 0.0, 1.0, 302);
        let mut layer = Conv3x3::new(2, 3, 303);
        let _ = layer.forward(&x);
        let grads = layer.backward(&r);
        let eps = 1e-2;
        for &idx in &[0usize, 7, 20, 53] {
            let mut wp = layer.weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = layer.weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let mut lp = Conv3x3 {
                weight: wp,
                ..layer.clone()
            };
            let mut lm = Conv3x3 {
                weight: wm,
                ..layer.clone()
            };
            let yp = lp.forward(&x).mul(&r).sum();
            let ym = lm.forward(&x).mul(&r).sum();
            let numeric = (yp - ym) / (2.0 * eps);
            let analytic = grads.weight.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(1.0),
                "dW[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn conv_input_gradient_matches_finite_differences() {
        let x = normal(&[1, 2, 4, 4], 0.0, 1.0, 311);
        let r = normal(&[1, 2, 4, 4], 0.0, 1.0, 312);
        let mut layer = Conv3x3::new(2, 2, 313);
        let _ = layer.forward(&x);
        let grads = layer.backward(&r);
        let eps = 1e-2;
        for &idx in &[0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let yp = layer.clone().forward(&xp).mul(&r).sum();
            let ym = layer.clone().forward(&xm).mul(&r).sum();
            let numeric = (yp - ym) / (2.0 * eps);
            let analytic = grads.input.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2 * numeric.abs().max(1.0),
                "dX[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn winograd_and_direct_forward_agree() {
        let x = normal(&[2, 3, 8, 8], 0.0, 1.0, 321);
        let mut a = Conv3x3::new(3, 4, 322);
        let mut b = a.clone();
        b.algorithm = ConvAlgorithm::Winograd(TileSize::F4);
        let ya = a.forward(&x);
        let yb = b.forward(&x);
        assert!(ya.relative_error(&yb) < 1e-4);
    }

    #[test]
    fn quantized_forward_is_close_but_not_identical() {
        let x = normal(&[1, 3, 8, 8], 0.0, 1.0, 331);
        let mut layer = Conv3x3::new(3, 4, 332);
        let reference = layer.clone().forward(&x);
        let cfg = WinogradQuantConfig::tapwise_po2(TileSize::F4, 10);
        let mats = WinogradMatrices::for_tile(TileSize::F4);
        let scales = TapwiseScales::calibrate(&layer.weight, &x, &mats, cfg.wino_bits, cfg.mode);
        layer.algorithm = ConvAlgorithm::WinogradQuantized {
            config: cfg,
            scales,
            input_max: x.abs_max(),
        };
        let y = layer.forward(&x);
        let err = y.relative_error(&reference);
        assert!(err > 0.0 && err < 0.2, "unexpected quantized error {err}");
    }

    #[test]
    fn linear_gradients_match_finite_differences() {
        let x = normal(&[3, 5], 0.0, 1.0, 341);
        let r = normal(&[3, 4], 0.0, 1.0, 342);
        let mut layer = Linear::new(5, 4, 343);
        let _ = layer.forward(&x);
        let grads = layer.backward(&r);
        let eps = 1e-3;
        for &idx in &[0usize, 9, 19] {
            let mut wp = layer.weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = layer.weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let mut lp = Linear {
                weight: wp,
                ..layer.clone()
            };
            let mut lm = Linear {
                weight: wm,
                ..layer.clone()
            };
            let yp = lp.forward(&x).mul(&r).sum();
            let ym = lm.forward(&x).mul(&r).sum();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!((numeric - grads.weight.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn relu_and_pool_backwards_are_consistent() {
        let x = normal(&[1, 2, 4, 4], 0.0, 1.0, 351);
        let (y, mask) = relu_forward(&x);
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
        let g = relu_backward(&Tensor::filled(&[1, 2, 4, 4], 1.0), &mask);
        // Gradient passes only where the input was positive.
        for (gi, xi) in g.as_slice().iter().zip(x.as_slice()) {
            assert_eq!(*gi > 0.0, *xi > 0.0);
        }

        let pooled = avg_pool2_forward(&x);
        assert_eq!(pooled.dims(), &[1, 2, 2, 2]);
        let back = avg_pool2_backward(&Tensor::filled(&[1, 2, 2, 2], 1.0), x.dims());
        assert!((back.sum() - 4.0 * 2.0).abs() < 1e-5);

        let gap = global_avg_pool_forward(&x);
        assert_eq!(gap.dims(), &[1, 2]);
        let gap_back = global_avg_pool_backward(&Tensor::filled(&[1, 2], 1.0), x.dims());
        assert!((gap_back.sum() - 2.0).abs() < 1e-5);
    }
}
