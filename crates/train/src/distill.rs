//! Knowledge distillation (Section III-B).
//!
//! The quantized Winograd network (student) is trained to match the FP32
//! baseline (teacher) with the Kullback–Leibler divergence between tempered
//! softmax distributions, combined with the ordinary cross-entropy on the hard
//! labels.

use crate::loss::{cross_entropy, softmax_cross_entropy_backward};
use wino_tensor::{softmax_rows, Tensor};

/// Value and gradient (w.r.t. the student logits) of the combined
/// distillation loss:
///
/// `L = α · T² · KL(softmax(teacher/T) ‖ softmax(student/T)) + (1−α) · CE(student, labels)`
///
/// The `T²` factor keeps the gradient magnitude comparable across temperatures
/// (Hinton et al.), and the KL gradient w.r.t. the student logits is
/// `T · (softmax(student/T) − softmax(teacher/T))` per sample (scaled by
/// `α·T²/T = α·T` and divided by the batch size).
///
/// # Panics
///
/// Panics on shape mismatches or invalid `alpha`/`temperature`.
pub fn distillation_loss(
    student_logits: &Tensor<f32>,
    teacher_logits: &Tensor<f32>,
    labels: &[usize],
    temperature: f32,
    alpha: f32,
) -> (f32, Tensor<f32>) {
    assert_eq!(
        student_logits.dims(),
        teacher_logits.dims(),
        "logit shape mismatch"
    );
    assert!(temperature > 0.0, "temperature must be positive");
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let batch = student_logits.dims()[0];
    assert_eq!(batch, labels.len(), "batch mismatch");
    let classes = student_logits.dims()[1];

    let p_teacher = softmax_rows(teacher_logits, temperature);
    let p_student = softmax_rows(student_logits, temperature);

    // KL(teacher || student) averaged over the batch.
    let mut kl = 0.0_f32;
    for r in 0..batch {
        for c in 0..classes {
            let pt = p_teacher.at2(r, c).max(1e-12);
            let ps = p_student.at2(r, c).max(1e-12);
            kl += pt * (pt / ps).ln();
        }
    }
    kl /= batch as f32;

    let ce = cross_entropy(student_logits, labels);
    let loss = alpha * temperature * temperature * kl + (1.0 - alpha) * ce;

    // Gradient w.r.t. student logits.
    let ce_grad = softmax_cross_entropy_backward(student_logits, labels);
    let mut grad = Tensor::<f32>::zeros(student_logits.dims());
    let kd_scale = alpha * temperature / batch as f32;
    for r in 0..batch {
        for c in 0..classes {
            let g_kd = kd_scale * (p_student.at2(r, c) - p_teacher.at2(r, c));
            let g = g_kd + (1.0 - alpha) * ce_grad.at2(r, c);
            grad.set2(r, c, g);
        }
    }
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_when_student_matches_teacher_and_labels() {
        let logits = Tensor::from_vec(vec![8.0_f32, -8.0, -8.0, 8.0], &[2, 2]).unwrap();
        let (loss, grad) = distillation_loss(&logits, &logits, &[0, 1], 2.0, 0.5);
        assert!(loss < 1e-3, "loss {loss}");
        assert!(grad.abs_max() < 1e-3);
    }

    #[test]
    fn pure_ce_when_alpha_is_zero() {
        let student = Tensor::from_vec(vec![1.0_f32, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let teacher = Tensor::from_vec(vec![-3.0_f32, 3.0, 3.0, -3.0], &[2, 2]).unwrap();
        let (loss, _) = distillation_loss(&student, &teacher, &[0, 1], 4.0, 0.0);
        assert!((loss - cross_entropy(&student, &[0, 1])).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let student = Tensor::from_vec(vec![0.5_f32, -0.2, 0.1, -0.4, 0.9, 0.3], &[2, 3]).unwrap();
        let teacher = Tensor::from_vec(vec![1.0_f32, 0.0, -1.0, -0.5, 1.5, 0.0], &[2, 3]).unwrap();
        let labels = [0usize, 1];
        let (_, grad) = distillation_loss(&student, &teacher, &labels, 3.0, 0.7);
        let eps = 1e-3;
        for idx in 0..student.len() {
            let mut plus = student.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = student.clone();
            minus.as_mut_slice()[idx] -= eps;
            let (lp, _) = distillation_loss(&plus, &teacher, &labels, 3.0, 0.7);
            let (lm, _) = distillation_loss(&minus, &teacher, &labels, 3.0, 0.7);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[idx]).abs() < 2e-3,
                "grad[{idx}]: analytic {} vs numeric {numeric}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn distillation_pulls_student_toward_teacher() {
        // One gradient step on the KD loss should reduce the KL term.
        let mut student = Tensor::from_vec(vec![2.0_f32, -2.0], &[1, 2]).unwrap();
        let teacher = Tensor::from_vec(vec![-2.0_f32, 2.0], &[1, 2]).unwrap();
        let labels = [1usize];
        let (l0, g) = distillation_loss(&student, &teacher, &labels, 2.0, 1.0);
        for (s, gv) in student.as_mut_slice().iter_mut().zip(g.as_slice()) {
            *s -= 1.0 * gv;
        }
        let (l1, _) = distillation_loss(&student, &teacher, &labels, 2.0, 1.0);
        assert!(l1 < l0);
    }
}
