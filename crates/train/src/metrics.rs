//! Classification metrics.

use wino_tensor::Tensor;

/// Top-1 accuracy of a batch of logits `[batch, classes]` against labels.
///
/// # Panics
///
/// Panics if the batch sizes disagree.
pub fn accuracy(logits: &Tensor<f32>, labels: &[usize]) -> f32 {
    assert_eq!(
        logits.rank(),
        2,
        "accuracy: logits must be [batch, classes]"
    );
    assert_eq!(logits.dims()[0], labels.len(), "accuracy: batch mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let classes = logits.dims()[1];
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for c in 0..classes {
            if logits.at2(r, c) > best_v {
                best_v = logits.at2(r, c);
                best = c;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct as f32 / labels.len() as f32
}

/// Top-k accuracy (the paper reports Top-1 and Top-5).
pub fn top_k_accuracy(logits: &Tensor<f32>, labels: &[usize], k: usize) -> f32 {
    assert_eq!(
        logits.dims()[0],
        labels.len(),
        "top_k_accuracy: batch mismatch"
    );
    if labels.is_empty() {
        return 0.0;
    }
    let classes = logits.dims()[1];
    let k = k.min(classes);
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let mut scored: Vec<(f32, usize)> = (0..classes).map(|c| (logits.at2(r, c), c)).collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        if scored.iter().take(k).any(|&(_, c)| c == label) {
            correct += 1;
        }
    }
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(
            vec![1.0_f32, 2.0, 0.0, 5.0, 1.0, 0.0, 0.1, 0.2, 0.9],
            &[3, 3],
        )
        .unwrap();
        assert!((accuracy(&logits, &[1, 0, 2]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[0, 0, 2]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn top_k_is_monotone_in_k() {
        let logits = Tensor::from_vec(
            vec![
                0.1_f32, 0.5, 0.4, 0.3, 0.9, 0.1, 0.2, 0.05, 0.7, 0.1, 0.15, 0.05,
            ],
            &[3, 4],
        )
        .unwrap();
        let labels = [2usize, 3, 0];
        let a1 = top_k_accuracy(&logits, &labels, 1);
        let a2 = top_k_accuracy(&logits, &labels, 2);
        let a4 = top_k_accuracy(&logits, &labels, 4);
        assert!(a1 <= a2 && a2 <= a4);
        assert!((a4 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_batch_is_zero() {
        let logits = Tensor::<f32>::zeros(&[0, 5]);
        assert_eq!(accuracy(&logits, &[]), 0.0);
        assert_eq!(top_k_accuracy(&logits, &[], 5), 0.0);
    }
}
