//! Straight-through estimation and learned log2 tap scales (Section III-B).
//!
//! The quantization function is a step function whose derivative is zero
//! almost everywhere, so the paper trains through it with the straight-through
//! estimator (`∂⌊x⌉/∂x = 1`) and learns the *logarithm* of the scaling factor
//! `t` with the gradient of Eq. 3:
//!
//! ```text
//! ∂q(x)/∂log2(t) = s·ln(2)·clamp(⌊x/s⌉ − x/s, −2^{b−1}, 2^{b−1}−1)
//! ```
//!
//! where `s = 2^{⌈log2 t⌉}`. The scale gradients are normalised by Adam.

use crate::optim::{Adam, Optimizer};
use wino_core::tapwise::TapScaleMatrix;
use wino_core::{QuantBits, ScaleMode};
use wino_tensor::Tensor;

/// Gradient of the quantizer output with respect to `log2(t)` for a single
/// value (Eq. 3 of the paper).
///
/// `x` is the value being quantized, `s = 2^{round(log2 t)}` the effective
/// power-of-two scale and `bits` the quantization bit-width.
pub fn learned_log2_scale_gradient(x: f32, s: f32, bits: QuantBits) -> f32 {
    let ratio = x / s;
    let lo = bits.min_value() as f32;
    let hi = bits.max_value() as f32;
    let inner = if ratio <= lo {
        lo
    } else if ratio >= hi {
        hi
    } else {
        ratio.round() - ratio
    };
    s * std::f32::consts::LN_2 * inner
}

/// A set of per-tap log2 scales learned with Adam, as used for the `∇log2 t`
/// rows of Table II.
#[derive(Debug)]
pub struct LearnedTapScales {
    log2_t: Tensor<f32>,
    bits: QuantBits,
    optimizer: Adam,
}

impl LearnedTapScales {
    /// Initialises the learned scales from a calibrated scale matrix.
    pub fn from_initial(scales: &TapScaleMatrix, lr: f32) -> Self {
        Self {
            log2_t: scales.scales().map(|s| s.log2()),
            bits: scales.bits(),
            optimizer: Adam::new(lr),
        }
    }

    /// The current effective power-of-two scale matrix `s = 2^{round(log2 t)}`.
    pub fn effective_scales(&self) -> TapScaleMatrix {
        let scales = self.log2_t.map(|l| 2.0_f32.powi(l.round() as i32));
        TapScaleMatrix::from_scales(scales, self.bits, ScaleMode::PowerOfTwo)
    }

    /// The raw learned exponents `log2 t`.
    pub fn log2_exponents(&self) -> &Tensor<f32> {
        &self.log2_t
    }

    /// Accumulates the scale gradient for one batch of Winograd-domain values.
    ///
    /// `values` are the pre-quantization tap values grouped per tap
    /// (`[count, t, t]`), `upstream` is the gradient of the loss with respect
    /// to the (de)quantized values with the same shape. Returns the gradient
    /// with respect to `log2 t` (a `t×t` tensor).
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree.
    pub fn scale_gradient(&self, values: &Tensor<f32>, upstream: &Tensor<f32>) -> Tensor<f32> {
        assert_eq!(
            values.dims(),
            upstream.dims(),
            "scale_gradient: shape mismatch"
        );
        assert_eq!(
            values.rank(),
            3,
            "scale_gradient: values must be [count, t, t]"
        );
        let t = values.dims()[1];
        assert_eq!(values.dims()[2], t);
        let scales = self.effective_scales();
        let count = values.dims()[0];
        let mut grad = Tensor::<f32>::zeros(&[t, t]);
        for r in 0..t {
            for c in 0..t {
                let s = scales.scale(r, c);
                let mut acc = 0.0_f32;
                for i in 0..count {
                    let x = values.at(&[i, r, c]);
                    let up = upstream.at(&[i, r, c]);
                    acc += up * learned_log2_scale_gradient(x, s, self.bits);
                }
                grad.set2(r, c, acc);
            }
        }
        grad
    }

    /// Applies one Adam step to the learned exponents.
    pub fn step(&mut self, grad: &Tensor<f32>) {
        self.optimizer.step(&mut self.log2_t, grad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_core::tapwise::TapScaleMatrix;

    fn initial_scales() -> TapScaleMatrix {
        let max = Tensor::filled(&[2, 2], 4.0);
        TapScaleMatrix::from_max_matrix(&max, QuantBits::int8(), ScaleMode::PowerOfTwo)
    }

    #[test]
    fn gradient_is_zero_for_exact_codes() {
        // When x is an exact multiple of s and in range, round(x/s) == x/s.
        let g = learned_log2_scale_gradient(0.5, 0.25, QuantBits::int8());
        assert!(g.abs() < 1e-6);
    }

    #[test]
    fn gradient_saturates_at_clamp_boundaries() {
        let s = 0.01_f32;
        let g = learned_log2_scale_gradient(1e6, s, QuantBits::int8());
        assert!((g - s * std::f32::consts::LN_2 * 127.0).abs() < 1e-4);
        let g_neg = learned_log2_scale_gradient(-1e6, s, QuantBits::int8());
        assert!((g_neg + s * std::f32::consts::LN_2 * 128.0).abs() < 1e-4);
    }

    #[test]
    fn gradient_sign_matches_rounding_direction() {
        // x/s = 2.4 rounds down to 2 → inner negative; x/s = 2.6 rounds up → positive.
        let s = 1.0;
        assert!(learned_log2_scale_gradient(2.4, s, QuantBits::int8()) < 0.0);
        assert!(learned_log2_scale_gradient(2.6, s, QuantBits::int8()) > 0.0);
    }

    #[test]
    fn effective_scales_are_powers_of_two() {
        let learned = LearnedTapScales::from_initial(&initial_scales(), 0.01);
        for &s in learned.effective_scales().scales().as_slice() {
            assert!((s.log2() - s.log2().round()).abs() < 1e-6);
        }
    }

    #[test]
    fn training_reduces_clamping_when_scale_is_too_small() {
        // Start from a scale that is far too small for the data; the learned
        // exponent should grow so that less clamping occurs.
        let tiny = Tensor::filled(&[1, 1], 0.125); // max -> scale 0.125/127
        let init = TapScaleMatrix::from_max_matrix(&tiny, QuantBits::int8(), ScaleMode::PowerOfTwo);
        let mut learned = LearnedTapScales::from_initial(&init, 0.05);
        let start_exp = learned.log2_exponents().as_slice()[0];
        // Values are much larger than the representable range => everything
        // clamps, and the positive-side gradient (with positive upstream)
        // pushes log2 t upward.
        let values = Tensor::filled(&[8, 1, 1], 10.0);
        let upstream = Tensor::filled(&[8, 1, 1], 1.0);
        for _ in 0..50 {
            let g = learned.scale_gradient(&values, &upstream);
            // Gradient descent on the loss −q(x) would *increase* q; here we just
            // check the mechanics: a consistently positive gradient moves the
            // exponent down, a negative one up. Use the negative to grow scale.
            learned.step(&g.scale(-1.0));
        }
        let end_exp = learned.log2_exponents().as_slice()[0];
        assert!(
            end_exp > start_exp,
            "exponent should grow: {start_exp} -> {end_exp}"
        );
    }

    #[test]
    fn scale_gradient_shape_checks() {
        let learned = LearnedTapScales::from_initial(&initial_scales(), 0.01);
        let values = Tensor::<f32>::zeros(&[3, 2, 2]);
        let upstream = Tensor::<f32>::zeros(&[3, 2, 2]);
        let g = learned.scale_gradient(&values, &upstream);
        assert_eq!(g.dims(), &[2, 2]);
    }
}
