//! Property-based tests of the accelerator performance model.

use accel_sim::{simulate_layer, AcceleratorConfig, Kernel};
use proptest::prelude::*;
use wino_nets::ConvLayer;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Invariants of the layer model for arbitrary 3x3 layers: positive finite
    /// times, the F4 speed-up never exceeds the 4x MAC reduction, and the
    /// effective throughput never exceeds the peak.
    #[test]
    fn layer_model_invariants(
        c_in in 16usize..512,
        c_out in 16usize..512,
        hw in 7usize..129,
        batch in 1usize..17,
    ) {
        let cfg = AcceleratorConfig::paper_system();
        let layer = ConvLayer::conv3x3("prop", c_in, c_out, hw);
        let base = simulate_layer(&layer, batch, Kernel::Im2col, &cfg);
        let f4 = simulate_layer(&layer, batch, Kernel::WinogradF4, &cfg);
        let f2 = simulate_layer(&layer, batch, Kernel::WinogradF2, &cfg);
        prop_assert!(base.cycles.is_finite() && base.cycles > 0.0);
        prop_assert!(f4.cycles.is_finite() && f4.cycles > 0.0);
        prop_assert!(base.cycles / f4.cycles <= 4.05, "F4 speed-up beyond MAC reduction");
        prop_assert!(base.cycles / f2.cycles <= 2.30, "F2 speed-up beyond MAC reduction");
        prop_assert!(base.effective_tops(&cfg) <= cfg.peak_tops() * 1.001);
        prop_assert!(f4.energy.total_nj() > 0.0 && base.energy.total_nj() > 0.0);
    }

    /// More external bandwidth can only reduce (or keep) the layer time.
    #[test]
    fn bandwidth_monotonicity(c in 32usize..256, hw in 8usize..65, batch in 1usize..9) {
        let layer = ConvLayer::conv3x3("prop", c, c, hw);
        let slow = AcceleratorConfig::paper_system();
        let fast = AcceleratorConfig::paper_system().with_bandwidth_scale(2.0);
        for kernel in [Kernel::Im2col, Kernel::WinogradF4] {
            let a = simulate_layer(&layer, batch, kernel, &slow);
            let b = simulate_layer(&layer, batch, kernel, &fast);
            prop_assert!(b.cycles <= a.cycles + 1e-6);
        }
    }
}
