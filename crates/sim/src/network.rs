//! End-to-end network execution (Table VII).
//!
//! Every convolution layer of a network is simulated with the kernels the
//! system configuration makes available; a compiler-like selection step picks
//! the fastest kernel per layer (the paper notes that with both F2 and F4
//! extensions present, different layers of the same network map to different
//! kernels). Times and energies are accumulated into images/s and
//! inferences/J.

use crate::config::AcceleratorConfig;
use crate::energy::EnergyBreakdown;
use crate::operators::{simulate_layer, Kernel, LayerRun};
use serde::{Deserialize, Serialize};
use wino_nets::{LayerKind, Network};
// Shared with the numeric execution engine's planner; re-exported so existing
// `accel_sim::KernelChoice` imports keep working.
pub use wino_nets::KernelChoice;

/// Per-layer outcome inside a network simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerResult {
    /// Layer name (from the network inventory).
    pub name: String,
    /// The kernel the selection step chose.
    pub chosen: Kernel,
    /// The run of the chosen kernel.
    pub run: LayerRun,
    /// Cycles the baseline im2col kernel would need (for per-layer speed-ups).
    pub im2col_cycles: f64,
}

/// The result of simulating a whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkResult {
    /// Network name.
    pub network: String,
    /// Batch size.
    pub batch: usize,
    /// Kernel availability used.
    pub kernels: KernelChoice,
    /// Total cycles per batch.
    pub total_cycles: f64,
    /// Cycles spent in Winograd-eligible layers.
    pub winograd_layer_cycles: f64,
    /// Cycles the Winograd-eligible layers would take with im2col.
    pub winograd_layer_im2col_cycles: f64,
    /// Total energy per batch.
    pub energy: EnergyBreakdown,
    /// Per-layer details.
    pub layers: Vec<LayerResult>,
}

impl NetworkResult {
    /// Throughput in images per second.
    pub fn images_per_second(&self, cfg: &AcceleratorConfig) -> f64 {
        self.batch as f64 / cfg.cycles_to_seconds(self.total_cycles)
    }

    /// Energy efficiency in inferences per joule.
    pub fn inferences_per_joule(&self) -> f64 {
        let joules = self.energy.total_nj() * 1e-9;
        if joules <= 0.0 {
            0.0
        } else {
            self.batch as f64 / joules
        }
    }

    /// End-to-end speed-up versus another result (typically the im2col run).
    pub fn speedup_over(&self, other: &NetworkResult) -> f64 {
        other.total_cycles / self.total_cycles
    }

    /// Speed-up restricted to the Winograd-eligible layers (the parenthesised
    /// numbers of Table VII).
    pub fn winograd_layer_speedup_over(&self, other: &NetworkResult) -> f64 {
        if self.winograd_layer_cycles <= 0.0 {
            1.0
        } else {
            other.winograd_layer_im2col_cycles / self.winograd_layer_cycles
        }
    }

    /// How many layers chose each kernel.
    pub fn kernel_histogram(&self) -> [(Kernel, usize); 3] {
        let mut counts = [0usize; 3];
        for l in &self.layers {
            match l.chosen {
                Kernel::Im2col => counts[0] += 1,
                Kernel::WinogradF2 => counts[1] += 1,
                Kernel::WinogradF4 => counts[2] += 1,
            }
        }
        [
            (Kernel::Im2col, counts[0]),
            (Kernel::WinogradF2, counts[1]),
            (Kernel::WinogradF4, counts[2]),
        ]
    }
}

/// Simulates a full network at the given batch size with the given kernel
/// availability, picking the fastest kernel per layer.
pub fn simulate_network(
    network: &Network,
    batch: usize,
    kernels: KernelChoice,
    cfg: &AcceleratorConfig,
) -> NetworkResult {
    let mut total_cycles = 0.0;
    let mut wino_cycles = 0.0;
    let mut wino_im2col_cycles = 0.0;
    let mut energy = EnergyBreakdown::default();
    let mut layers = Vec::with_capacity(network.layers.len());

    for layer in &network.layers {
        let im2col_run = simulate_layer(layer, batch, Kernel::Im2col, cfg);
        let eligible = layer.kind() == LayerKind::WinogradEligible;
        let mut best = im2col_run.clone();
        for kernel in kernels.candidates_for(layer) {
            if kernel == Kernel::Im2col {
                continue;
            }
            let run = simulate_layer(layer, batch, kernel, cfg);
            if run.cycles < best.cycles {
                best = run;
            }
        }
        total_cycles += best.cycles;
        if eligible {
            wino_cycles += best.cycles;
            wino_im2col_cycles += im2col_run.cycles;
        }
        energy = energy.add(&best.energy);
        layers.push(LayerResult {
            name: layer.name.clone(),
            chosen: best.kernel,
            im2col_cycles: im2col_run.cycles,
            run: best,
        });
    }

    NetworkResult {
        network: network.name.clone(),
        batch,
        kernels,
        total_cycles,
        winograd_layer_cycles: wino_cycles,
        winograd_layer_im2col_cycles: wino_im2col_cycles,
        energy,
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_nets::{resnet34, resnet50, unet, yolov3};

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::default()
    }

    #[test]
    fn f4_beats_im2col_end_to_end_on_resnet34() {
        let net = resnet34();
        let base = simulate_network(&net, 16, KernelChoice::Im2colOnly, &cfg());
        let f4 = simulate_network(&net, 16, KernelChoice::WithF4, &cfg());
        let speedup = f4.speedup_over(&base);
        // Table VII: 1.36x end-to-end at batch 16 (1.93x on the Winograd layers).
        assert!(
            speedup > 1.1 && speedup < 2.5,
            "ResNet-34 b16 speedup {speedup}"
        );
        assert!(f4.winograd_layer_speedup_over(&base) > speedup);
    }

    #[test]
    fn unet_gains_more_than_resnet50() {
        // Table VII: UNet 1.74x vs ResNet-50 1.02x at batch 1 — 1x1-dominated
        // networks benefit less.
        let c = cfg();
        let unet_gain = {
            let net = unet();
            let base = simulate_network(&net, 1, KernelChoice::Im2colOnly, &c);
            let f4 = simulate_network(&net, 1, KernelChoice::WithF4, &c);
            f4.speedup_over(&base)
        };
        let resnet_gain = {
            let net = resnet50();
            let base = simulate_network(&net, 1, KernelChoice::Im2colOnly, &c);
            let f4 = simulate_network(&net, 1, KernelChoice::WithF4, &c);
            f4.speedup_over(&base)
        };
        assert!(
            unet_gain > resnet_gain,
            "UNet ({unet_gain}) should gain more than ResNet-50 ({resnet_gain})"
        );
    }

    #[test]
    fn batch_16_gains_more_than_batch_1_on_resnet34() {
        let c = cfg();
        let net = resnet34();
        let gain = |b: usize| {
            let base = simulate_network(&net, b, KernelChoice::Im2colOnly, &c);
            let f4 = simulate_network(&net, b, KernelChoice::WithF4, &c);
            f4.speedup_over(&base)
        };
        assert!(
            gain(16) > gain(1),
            "batch trend violated: {} vs {}",
            gain(16),
            gain(1)
        );
    }

    #[test]
    fn f4_is_at_least_as_good_as_f2_end_to_end() {
        let c = cfg();
        for net in [yolov3(256), resnet34()] {
            let f2 = simulate_network(&net, 8, KernelChoice::WithF2, &c);
            let f4 = simulate_network(&net, 8, KernelChoice::WithF4, &c);
            assert!(
                f4.total_cycles <= f2.total_cycles * 1.05,
                "{}: F4 ({}) should not lose clearly to F2 ({})",
                net.name,
                f4.total_cycles,
                f2.total_cycles
            );
        }
    }

    #[test]
    fn higher_bandwidth_helps_f4_more_than_f2() {
        // Table VII (starred columns): with 1.5x bandwidth F2 plateaus while F4
        // keeps scaling.
        let net = unet();
        let base_cfg = cfg();
        let fast_cfg = cfg().with_bandwidth_scale(1.5);
        let gain = |c: &AcceleratorConfig, k: KernelChoice| {
            let base = simulate_network(&net, 1, KernelChoice::Im2colOnly, c);
            let with = simulate_network(&net, 1, k, c);
            with.speedup_over(&base)
        };
        let f4_gain_ratio =
            gain(&fast_cfg, KernelChoice::WithF4) / gain(&base_cfg, KernelChoice::WithF4);
        let f2_gain_ratio =
            gain(&fast_cfg, KernelChoice::WithF2) / gain(&base_cfg, KernelChoice::WithF2);
        assert!(
            f4_gain_ratio >= f2_gain_ratio * 0.98,
            "F4 should benefit at least as much from extra bandwidth ({f4_gain_ratio} vs {f2_gain_ratio})"
        );
    }

    #[test]
    fn winograd_improves_energy_efficiency() {
        // Table VII last column: 1.15x-1.85x energy-efficiency gain.
        let c = cfg();
        let net = unet();
        let base = simulate_network(&net, 1, KernelChoice::Im2colOnly, &c);
        let f4 = simulate_network(&net, 1, KernelChoice::WithF4, &c);
        let gain = f4.inferences_per_joule() / base.inferences_per_joule();
        assert!(gain > 1.1, "energy-efficiency gain {gain} too small");
        assert!(
            gain < 3.5,
            "energy-efficiency gain {gain} implausibly large"
        );
    }

    #[test]
    fn non_eligible_layers_always_use_im2col() {
        let c = cfg();
        let net = resnet50();
        let f4 = simulate_network(&net, 1, KernelChoice::WithF2AndF4, &c);
        for l in &f4.layers {
            if l.name.contains("1x1") || l.name.contains("downsample") || l.name.contains("conv1") {
                assert_eq!(
                    l.chosen,
                    Kernel::Im2col,
                    "layer {} chose {}",
                    l.name,
                    l.chosen
                );
            }
        }
        let hist = f4.kernel_histogram();
        assert!(hist[0].1 > 0 && (hist[1].1 + hist[2].1) > 0);
    }

    #[test]
    fn images_per_second_are_positive_and_finite() {
        let c = cfg();
        let r = simulate_network(&resnet34(), 1, KernelChoice::WithF4, &c);
        let ips = r.images_per_second(&c);
        assert!(ips.is_finite() && ips > 0.0);
        assert!(r.inferences_per_joule() > 0.0);
    }
}
