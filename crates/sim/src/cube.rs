//! Timing model of the Cube Unit (the 16×32×16 int8 MatMul datapath).

use crate::config::AcceleratorConfig;

/// Cycles for one dense MatMul of `[m × k] · [k × n]` on the Cube Unit,
/// accounting for the tile quantisation of each dimension (partial tiles cost a
/// full tile).
pub fn matmul_cycles(cfg: &AcceleratorConfig, m: usize, k: usize, n: usize) -> f64 {
    let tiles_m = m.div_ceil(cfg.cube_m);
    let tiles_k = k.div_ceil(cfg.cube_k);
    let tiles_n = n.div_ceil(cfg.cube_n);
    (tiles_m * tiles_k * tiles_n) as f64
}

/// Cycles for the Cube-Unit portion of a convolution expressed as a lowered
/// MatMul (`rows = output pixels`, `reduction = C_in · K²`, `cols = C_out`),
/// with an efficiency derating applied.
pub fn cube_cycles(
    cfg: &AcceleratorConfig,
    rows: usize,
    reduction: usize,
    cols: usize,
    efficiency: f64,
) -> f64 {
    assert!(
        efficiency > 0.0 && efficiency <= 1.0,
        "efficiency must be in (0, 1]"
    );
    matmul_cycles(cfg, rows, reduction, cols) / efficiency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tile_multiples_have_no_rounding_loss() {
        let cfg = AcceleratorConfig::default();
        // 32x64x32 = 2*2*2 tiles = 8 cycles.
        assert_eq!(matmul_cycles(&cfg, 32, 64, 32), 8.0);
    }

    #[test]
    fn partial_tiles_round_up() {
        let cfg = AcceleratorConfig::default();
        assert_eq!(matmul_cycles(&cfg, 17, 33, 17), 2.0 * 2.0 * 2.0);
        assert_eq!(matmul_cycles(&cfg, 1, 1, 1), 1.0);
    }

    #[test]
    fn peak_rate_matches_config() {
        let cfg = AcceleratorConfig::default();
        // A perfectly shaped matmul achieves cube_macs_per_cycle MACs/cycle.
        let m = 160;
        let k = 320;
        let n = 160;
        let cycles = matmul_cycles(&cfg, m, k, n);
        let macs = (m * k * n) as f64;
        assert!((macs / cycles - cfg.cube_macs_per_cycle()).abs() < 1e-9);
    }

    #[test]
    fn efficiency_increases_cycles() {
        let cfg = AcceleratorConfig::default();
        let full = cube_cycles(&cfg, 64, 64, 64, 1.0);
        let derated = cube_cycles(&cfg, 64, 64, 64, 0.8);
        assert!(derated > full);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn invalid_efficiency_panics() {
        let cfg = AcceleratorConfig::default();
        let _ = cube_cycles(&cfg, 1, 1, 1, 0.0);
    }
}
