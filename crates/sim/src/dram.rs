//! External-memory (DRAM) model.
//!
//! The paper uses a simple in-order DRAM model: requests are served at the
//! peak bandwidth of 81.2 B/cycle with a fixed average latency of 150 core
//! cycles plus a small Gaussian jitter (σ = 5 cycles). Regular streaming
//! accesses make detailed bank/row modelling unnecessary for these workloads.

use crate::config::AcceleratorConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The streaming DRAM model.
#[derive(Debug, Clone)]
pub struct DramModel {
    bytes_per_cycle: f64,
    latency: f64,
    jitter_sigma: f64,
    rng: ChaCha8Rng,
}

impl DramModel {
    /// Creates the model from an accelerator configuration.
    pub fn new(cfg: &AcceleratorConfig) -> Self {
        Self::with_seed(cfg, 0xD12A)
    }

    /// Creates the model with an explicit jitter seed (deterministic runs).
    pub fn with_seed(cfg: &AcceleratorConfig, seed: u64) -> Self {
        Self {
            bytes_per_cycle: cfg.dram_bytes_per_cycle,
            latency: cfg.dram_latency_cycles,
            jitter_sigma: 5.0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Peak bandwidth in bytes per core cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Pure streaming transfer time of `bytes` bytes (no latency component):
    /// the steady-state cost used when transfers are pipelined behind compute.
    pub fn stream_cycles(&self, bytes: f64) -> f64 {
        bytes / self.bytes_per_cycle
    }

    /// Completion time of a single request of `bytes` bytes including the fixed
    /// average latency and Gaussian jitter (used for the non-overlapped
    /// prologue of each operator).
    pub fn request_cycles(&mut self, bytes: f64) -> f64 {
        let jitter = self.jitter_sigma * self.sample_normal();
        (self.latency + jitter).max(0.0) + self.stream_cycles(bytes)
    }

    fn sample_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0_f64..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_rate_matches_bandwidth() {
        let cfg = AcceleratorConfig::default();
        let dram = DramModel::new(&cfg);
        assert!((dram.stream_cycles(812.0) - 10.0).abs() < 1e-9);
        assert_eq!(dram.bytes_per_cycle(), cfg.dram_bytes_per_cycle);
    }

    #[test]
    fn request_includes_latency_and_is_near_the_mean() {
        let cfg = AcceleratorConfig::default();
        let mut dram = DramModel::with_seed(&cfg, 7);
        let mut total = 0.0;
        let n = 200;
        for _ in 0..n {
            total += dram.request_cycles(81.2);
        }
        let mean = total / n as f64;
        // latency 150 + 1 cycle of data, jitter averages out.
        assert!((mean - 151.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = AcceleratorConfig::default();
        let mut a = DramModel::with_seed(&cfg, 3);
        let mut b = DramModel::with_seed(&cfg, 3);
        for _ in 0..10 {
            assert_eq!(a.request_cycles(100.0), b.request_cycles(100.0));
        }
    }

    #[test]
    fn higher_bandwidth_reduces_stream_time() {
        let slow = DramModel::new(&AcceleratorConfig::default());
        let fast = DramModel::new(&AcceleratorConfig::default().with_bandwidth_scale(1.5));
        assert!(fast.stream_cycles(1e6) < slow.stream_cycles(1e6));
    }
}
