//! Hardware configuration of the modelled accelerator system.

use serde::{Deserialize, Serialize};

/// Per-byte energy cost of each on-chip memory and of external DRAM
/// (Table V plus a typical LPDDR4x external access cost).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryEnergyCosts {
    /// L0A read / write (pJ/B).
    pub l0a: (f64, f64),
    /// L0B read / write (pJ/B).
    pub l0b: (f64, f64),
    /// L0C port-A read / write (pJ/B).
    pub l0c: (f64, f64),
    /// L0C port-B read cost when running the Winograd kernel (rotation logic).
    pub l0c_port_b_winograd: f64,
    /// L1 read / write (pJ/B).
    pub l1: (f64, f64),
    /// External DRAM access (pJ/B), both directions.
    pub dram: f64,
}

impl Default for MemoryEnergyCosts {
    fn default() -> Self {
        Self {
            l0a: (0.22, 0.24),
            l0b: (0.22, 0.24),
            l0c: (0.23, 0.29),
            l0c_port_b_winograd: 0.69,
            l1: (0.92, 0.68),
            dram: 20.0,
        }
    }
}

/// Peak power of the compute units at 0.8 V / 500 MHz (Table V), in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitPowers {
    /// Cube Unit running the im2col kernel.
    pub cube_im2col_mw: f64,
    /// Cube Unit running the Winograd kernel (denser operands → more switching).
    pub cube_winograd_mw: f64,
    /// im2col engine inside MTE1.
    pub im2col_mw: f64,
    /// Input transformation engine (MTE1).
    pub input_xform_mw: f64,
    /// Weight transformation engine (MTE1).
    pub weight_xform_mw: f64,
    /// Output transformation engine (FixPipe).
    pub output_xform_mw: f64,
    /// Vector Unit.
    pub vector_mw: f64,
}

impl Default for UnitPowers {
    fn default() -> Self {
        Self {
            cube_im2col_mw: 1521.0,
            cube_winograd_mw: 1923.0,
            im2col_mw: 30.0,
            input_xform_mw: 145.0,
            weight_xform_mw: 228.0,
            output_xform_mw: 114.0,
            vector_mw: 260.0,
        }
    }
}

/// The full accelerator-system configuration.
///
/// The default corresponds to the paper's system: two AI cores at 500 MHz with
/// a 16×32×16 int8 Cube Unit each (8 TOp/s peak), 41 GB/s of external
/// bandwidth (81.2 B/cycle shared), and the Winograd transformation-engine
/// parallelisms chosen in Section IV-B2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of AI cores (iFMs are broadcast to all cores; output channels are
    /// split across cores).
    pub cores: usize,
    /// Clock frequency in MHz (used to convert cycles to seconds).
    pub frequency_mhz: f64,
    /// Cube Unit matrix dimensions: rows of the left operand tile.
    pub cube_m: usize,
    /// Cube Unit reduction dimension per cycle.
    pub cube_k: usize,
    /// Cube Unit columns of the right operand tile.
    pub cube_n: usize,
    /// Total external-memory bandwidth in bytes/cycle (shared by all cores).
    pub dram_bytes_per_cycle: f64,
    /// Average external-memory latency in core cycles.
    pub dram_latency_cycles: f64,
    /// L1 scratchpad size in bytes (per core).
    pub l1_bytes: usize,
    /// L0A size in bytes.
    pub l0a_bytes: usize,
    /// L0B size in bytes.
    pub l0b_bytes: usize,
    /// L0C size in bytes.
    pub l0c_bytes: usize,
    /// Vector Unit throughput in int8 elements per cycle.
    pub vector_elems_per_cycle: f64,
    /// Input transformation engine: parallel transforms (`P_c · P_s`).
    pub input_xform_parallel: usize,
    /// Input transformation engine: cycles per transform (fast row-by-row = `h_T`).
    pub input_xform_cycles: usize,
    /// Output transformation engine: parallel transforms along `C_out`.
    pub output_xform_parallel: usize,
    /// Output transformation engine: cycles per transform.
    pub output_xform_cycles: usize,
    /// Weight transformation engine throughput in spatial weight elements per
    /// cycle per core (tap-by-tap engine sized to match the external link).
    pub weight_xform_elems_per_cycle: f64,
    /// Maximum output channels kept resident per pass (limited by L0C capacity;
    /// the paper computes 64 for double-buffered F4).
    pub winograd_cout_block: usize,
    /// Cube utilisation derating for the Winograd batched MatMul (tail effects
    /// and the diagonal L0A access pattern).
    pub winograd_cube_efficiency: f64,
    /// Cube utilisation derating for the im2col kernel.
    pub im2col_cube_efficiency: f64,
    /// Per-byte energy of each memory.
    pub memory_energy: MemoryEnergyCosts,
    /// Peak unit powers.
    pub unit_powers: UnitPowers,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self {
            cores: 2,
            frequency_mhz: 500.0,
            cube_m: 16,
            cube_k: 32,
            cube_n: 16,
            dram_bytes_per_cycle: 81.2,
            dram_latency_cycles: 150.0,
            l1_bytes: 1248 * 1024,
            l0a_bytes: 64 * 1024,
            l0b_bytes: 64 * 1024,
            l0c_bytes: 288 * 1024,
            vector_elems_per_cycle: 256.0,
            input_xform_parallel: 64,
            input_xform_cycles: 6,
            output_xform_parallel: 16,
            output_xform_cycles: 6,
            weight_xform_elems_per_cycle: 32.0,
            winograd_cout_block: 64,
            winograd_cube_efficiency: 0.90,
            im2col_cube_efficiency: 0.95,
            memory_energy: MemoryEnergyCosts::default(),
            unit_powers: UnitPowers::default(),
        }
    }
}

impl AcceleratorConfig {
    /// The paper's baseline system (identical to `Default`).
    pub fn paper_system() -> Self {
        Self::default()
    }

    /// The same system with the external bandwidth scaled by `factor`
    /// (the `1.5×` DDR5 columns of Table VII use `factor = 1.5`).
    pub fn with_bandwidth_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "bandwidth scale must be positive");
        self.dram_bytes_per_cycle *= factor;
        self
    }

    /// Peak MACs per cycle of one Cube Unit.
    pub fn cube_macs_per_cycle(&self) -> f64 {
        (self.cube_m * self.cube_k * self.cube_n) as f64
    }

    /// Peak int8 throughput of the whole system in TOp/s, using the paper's
    /// convention of counting one multiply–accumulate as one operation
    /// (two cores × 8192 MACs/cycle × 500 MHz ≈ 8 TOp/s).
    pub fn peak_tops(&self) -> f64 {
        self.cores as f64 * self.cube_macs_per_cycle() * self.frequency_mhz * 1e6 / 1e12
    }

    /// External bandwidth in GB/s.
    pub fn dram_gbps(&self) -> f64 {
        self.dram_bytes_per_cycle * self.frequency_mhz * 1e6 / 1e9
    }

    /// Converts core cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.frequency_mhz * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_paper_system() {
        let cfg = AcceleratorConfig::default();
        // 2 cores × 8192 MACs/cycle × 500 MHz ≈ 8.2 TOp/s (paper: 8 TOp/s).
        assert!((cfg.peak_tops() - 8.192).abs() < 0.01);
        // 81.2 B/cycle at 500 MHz ≈ 40.6 GB/s (paper: 41 GB/s).
        assert!((cfg.dram_gbps() - 40.6).abs() < 0.5);
        assert_eq!(cfg.l0c_bytes, 288 * 1024);
    }

    #[test]
    fn bandwidth_scaling() {
        let cfg = AcceleratorConfig::default().with_bandwidth_scale(1.5);
        assert!((cfg.dram_bytes_per_cycle - 81.2 * 1.5).abs() < 1e-9);
    }

    #[test]
    fn cycles_to_seconds_uses_frequency() {
        let cfg = AcceleratorConfig::default();
        assert!((cfg.cycles_to_seconds(500e6) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_scale_panics() {
        let _ = AcceleratorConfig::default().with_bandwidth_scale(0.0);
    }

    #[test]
    fn energy_cost_defaults_match_table_v() {
        let m = MemoryEnergyCosts::default();
        assert!((m.l1.0 - 0.92).abs() < 1e-9);
        assert!((m.l0c_port_b_winograd - 0.69).abs() < 1e-9);
        let p = UnitPowers::default();
        assert!((p.cube_winograd_mw / p.cube_im2col_mw - 1.264).abs() < 0.01);
    }
}
