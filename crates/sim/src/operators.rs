//! Per-layer execution model of the im2col and Winograd convolution operators.
//!
//! The model follows the Listing-1 dataflow: the weight load + transformation
//! phase precedes the steady-state phase in which input loads, input
//! transformations, Cube MatMuls, output transformations, vector
//! re-quantization and output stores are all double-buffered against each
//! other. The steady-state time is therefore the maximum of the per-resource
//! times, and the layer time adds the (mostly serial) weight phase and a fixed
//! pipeline prologue.

use crate::config::AcceleratorConfig;
use crate::cube::cube_cycles;
use crate::energy::{energy_from_activity, AccessCounts, EnergyBreakdown};
use crate::xform::TransformEngine;
use serde::{Deserialize, Serialize};
use wino_nets::ConvLayer;
// The kernel taxonomy is shared with the numeric execution engine; it lives in
// `wino_nets` and is re-exported here so existing `accel_sim::Kernel` imports
// keep working.
pub use wino_nets::Kernel;

/// Cycle contribution of each resource to one layer (whole system, i.e. the
/// slowest core determines the time; resources are already per-core balanced).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Fixed pipeline prologue (DRAM latency + ramp-up).
    pub prologue: f64,
    /// Weight load from external memory.
    pub weight_load: f64,
    /// Weight transformation (zero for im2col).
    pub weight_xform: f64,
    /// Cube Unit MatMuls.
    pub cube: f64,
    /// Input transformation engine (or im2col engine for the im2col kernel).
    pub input_xform: f64,
    /// Output transformation engine (zero for im2col).
    pub output_xform: f64,
    /// Input feature-map loads from external memory.
    pub input_load: f64,
    /// Output feature-map stores to external memory.
    pub output_store: f64,
    /// Vector Unit work (re-quantization, activation).
    pub vector: f64,
}

impl CycleBreakdown {
    /// The steady-state bottleneck (everything that is double-buffered).
    pub fn steady_state(&self) -> f64 {
        self.cube
            .max(self.input_xform)
            .max(self.output_xform)
            .max(self.input_load + self.output_store)
            .max(self.vector)
    }

    /// The serial weight phase.
    pub fn weight_phase(&self) -> f64 {
        self.weight_load.max(self.weight_xform)
    }

    /// Total layer cycles.
    pub fn total(&self) -> f64 {
        self.prologue + self.weight_phase() + self.steady_state()
    }

    /// Name of the steady-state bottleneck resource.
    pub fn bottleneck(&self) -> &'static str {
        let pairs = [
            ("cube", self.cube),
            ("input_xform", self.input_xform),
            ("output_xform", self.output_xform),
            ("memory", self.input_load + self.output_store),
            ("vector", self.vector),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(n, _)| *n)
            .unwrap_or("cube")
    }
}

/// The result of simulating one layer with one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerRun {
    /// The kernel that was simulated.
    pub kernel: Kernel,
    /// Batch size.
    pub batch: usize,
    /// Total cycles.
    pub cycles: f64,
    /// Per-resource cycle breakdown.
    pub breakdown: CycleBreakdown,
    /// Bytes moved per memory level.
    pub access: AccessCounts,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// MACs of the standard algorithm (for utilisation metrics).
    pub macs: u64,
}

impl LayerRun {
    /// Effective int8 throughput in TOp/s, counting standard-algorithm MACs as
    /// operations (the paper's "equivalent TOp" convention for the Winograd
    /// kernel).
    pub fn effective_tops(&self, cfg: &AcceleratorConfig) -> f64 {
        let seconds = cfg.cycles_to_seconds(self.cycles);
        self.macs as f64 / seconds / 1e12
    }
}

/// Simulates one convolution layer on the accelerator with the chosen kernel.
///
/// # Panics
///
/// Panics if a Winograd kernel is requested for a non-Winograd-eligible layer
/// (kernel ≠ 3×3 or stride ≠ 1).
pub fn simulate_layer(
    layer: &ConvLayer,
    batch: usize,
    kernel: Kernel,
    cfg: &AcceleratorConfig,
) -> LayerRun {
    match kernel {
        Kernel::Im2col => simulate_im2col(layer, batch, cfg),
        Kernel::WinogradF2 | Kernel::WinogradF4 => {
            assert!(
                layer.kernel == 3 && layer.stride == 1,
                "Winograd kernels require 3x3 stride-1 layers (got {}x{} stride {})",
                layer.kernel,
                layer.kernel,
                layer.stride
            );
            simulate_winograd(layer, batch, kernel, cfg)
        }
    }
}

/// Volumes (bytes, int8) of one layer at the given batch.
fn volumes(layer: &ConvLayer, batch: usize) -> (f64, f64, f64) {
    let ifm = layer.input_elements(batch) as f64;
    let wt = layer.weight_elements() as f64;
    let ofm = layer.output_elements(batch) as f64;
    (ifm, wt, ofm)
}

fn prologue(cfg: &AcceleratorConfig) -> f64 {
    cfg.dram_latency_cycles + 200.0
}

fn simulate_im2col(layer: &ConvLayer, batch: usize, cfg: &AcceleratorConfig) -> LayerRun {
    let (ifm, wt, ofm) = volumes(layer, batch);
    let reps = layer.repeats.max(1) as f64;
    let rows = batch * layer.h_out * layer.w_out;
    let reduction = layer.c_in * layer.kernel * layer.kernel;
    let cols = layer.c_out.div_ceil(cfg.cores);

    let cube = reps * cube_cycles(cfg, rows, reduction, cols, cfg.im2col_cube_efficiency);
    // The im2col engine sustains the Cube Unit by design; it contributes a small
    // non-overlapped fraction (pattern set-up per row of tiles).
    let im2col_engine = 0.06 * cube;
    let input_load = ifm / cfg.dram_bytes_per_cycle;
    let output_store = ofm / cfg.dram_bytes_per_cycle;
    let weight_load = wt / cfg.dram_bytes_per_cycle;
    let vector = ofm / (cfg.cores as f64 * cfg.vector_elems_per_cycle);

    let breakdown = CycleBreakdown {
        prologue: prologue(cfg),
        weight_load,
        weight_xform: 0.0,
        cube,
        input_xform: im2col_engine,
        output_xform: 0.0,
        input_load,
        output_store,
        vector,
    };

    // Memory accesses (bytes).
    let lowered = ifm * (layer.kernel * layer.kernel) as f64 / (layer.stride * layer.stride) as f64;
    let cube_total_cycles = cube * cfg.cores as f64;
    let access = AccessCounts {
        gm_fm_read: ifm,
        gm_fm_write: ofm,
        gm_wt_read: wt,
        l1_fm_write: ifm,
        l1_fm_read: lowered,
        l1_wt_write: wt,
        l1_wt_read: wt,
        l0a_write: lowered,
        l0a_read: cube_total_cycles * (cfg.cube_m * cfg.cube_k) as f64,
        l0b_write: wt,
        l0b_read: cube_total_cycles * (cfg.cube_k * cfg.cube_n) as f64,
        l0c_write: ofm * 4.0,
        l0c_read: ofm * 4.0,
    };

    let energy = energy_from_activity(
        cfg,
        cube * cfg.cores as f64,
        im2col_engine * cfg.cores as f64,
        0.0,
        0.0,
        vector * cfg.cores as f64,
        &access,
        false,
    );

    LayerRun {
        kernel: Kernel::Im2col,
        batch,
        cycles: breakdown.total(),
        breakdown,
        access,
        energy,
        macs: layer.macs(batch),
    }
}

fn simulate_winograd(
    layer: &ConvLayer,
    batch: usize,
    kernel: Kernel,
    cfg: &AcceleratorConfig,
) -> LayerRun {
    let m = kernel.tile_m().expect("winograd kernel");
    let t = m + 2;
    let (ifm, wt, ofm) = volumes(layer, batch);
    let reps = layer.repeats.max(1) as f64;
    let tiles = layer.h_out.div_ceil(m) * layer.w_out.div_ceil(m);
    let taps = t * t;

    // Cube: taps-many batched MatMuls of [batch·tiles × C_in] · [C_in × C_out/cores].
    let rows = batch * tiles;
    let cols = layer.c_out.div_ceil(cfg.cores);
    let cube =
        reps * taps as f64 * cube_cycles(cfg, rows, layer.c_in, cols, cfg.winograd_cube_efficiency);

    // Transformation engines (per core; each core transforms all input channels
    // for its own output-channel half).
    let mut in_engine = TransformEngine::paper_input_engine();
    in_engine.tile = t;
    let mut out_engine = TransformEngine::paper_output_engine();
    out_engine.tile = t;
    let input_xform = reps * in_engine.cycles_for(batch * tiles * layer.c_in);
    let output_xform = reps * out_engine.cycles_for(batch * tiles * cols);
    // `wt` already accounts for layer repeats, so no extra `reps` factor here.
    let weight_xform = wt / (cfg.cores as f64 * cfg.weight_xform_elems_per_cycle);

    // External memory: the iFMs are broadcast to both cores but must be
    // re-streamed once per resident output-channel block (L0C capacity limit).
    let cout_per_core = layer.c_out.div_ceil(cfg.cores);
    let ifm_passes = cout_per_core.div_ceil(cfg.winograd_cout_block) as f64;
    let input_load = ifm * ifm_passes / cfg.dram_bytes_per_cycle;
    let output_store = ofm / cfg.dram_bytes_per_cycle;
    let weight_load = wt / cfg.dram_bytes_per_cycle;
    let vector = ofm / (cfg.cores as f64 * cfg.vector_elems_per_cycle);

    let breakdown = CycleBreakdown {
        prologue: prologue(cfg),
        weight_load,
        weight_xform,
        cube,
        input_xform,
        output_xform,
        input_load,
        output_store,
        vector,
    };

    // Memory accesses (bytes). The Winograd domain expands the iFM volume by
    // t²/m² and the weight volume by t²/9.
    let fm_expand = (taps as f64) / ((m * m) as f64);
    let wt_expand = (taps as f64) / 9.0;
    let cube_total_cycles = cube * cfg.cores as f64;
    let access = AccessCounts {
        gm_fm_read: ifm * ifm_passes,
        gm_fm_write: ofm,
        gm_wt_read: wt,
        l1_fm_write: ifm * ifm_passes,
        l1_fm_read: ifm * ifm_passes * fm_expand,
        l1_wt_write: wt * wt_expand,
        l1_wt_read: cube_total_cycles * (cfg.cube_k * cfg.cube_n) as f64,
        l0a_write: ifm * ifm_passes * fm_expand,
        l0a_read: cube_total_cycles * (cfg.cube_m * cfg.cube_k) as f64,
        l0b_write: wt,
        l0b_read: wt,
        l0c_write: ofm * fm_expand * 4.0,
        l0c_read: ofm * fm_expand * 4.0,
    };

    let energy = energy_from_activity(
        cfg,
        cube * cfg.cores as f64,
        input_xform * cfg.cores as f64,
        weight_xform * cfg.cores as f64,
        output_xform * cfg.cores as f64,
        vector * cfg.cores as f64,
        &access,
        true,
    );

    LayerRun {
        kernel,
        batch,
        cycles: breakdown.total(),
        breakdown,
        access,
        energy,
        macs: layer.macs(batch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_nets::ConvLayer;

    fn layer(c_in: usize, c_out: usize, hw: usize) -> ConvLayer {
        ConvLayer::conv3x3("test", c_in, c_out, hw)
    }

    fn speedup(l: &ConvLayer, batch: usize, kernel: Kernel) -> f64 {
        let cfg = AcceleratorConfig::default();
        let base = simulate_layer(l, batch, Kernel::Im2col, &cfg);
        let k = simulate_layer(l, batch, kernel, &cfg);
        base.cycles / k.cycles
    }

    #[test]
    fn f4_speedup_grows_with_resolution_and_batch() {
        // Table IV macro-trend 1: larger resolution or batch → higher speed-up.
        let s_small = speedup(&layer(256, 256, 16), 1, Kernel::WinogradF4);
        let s_large = speedup(&layer(256, 256, 128), 1, Kernel::WinogradF4);
        assert!(
            s_large > s_small,
            "resolution trend: {s_small} -> {s_large}"
        );
        let s_b1 = speedup(&layer(256, 256, 32), 1, Kernel::WinogradF4);
        let s_b8 = speedup(&layer(256, 256, 32), 8, Kernel::WinogradF4);
        assert!(s_b8 > s_b1, "batch trend: {s_b1} -> {s_b8}");
    }

    #[test]
    fn f4_speedup_grows_with_input_channels() {
        // Table IV macro-trend 2: more input channels → higher speed-up.
        let s_128 = speedup(&layer(128, 256, 32), 8, Kernel::WinogradF4);
        let s_256 = speedup(&layer(256, 256, 32), 8, Kernel::WinogradF4);
        assert!(s_256 > s_128, "channel trend: {s_128} -> {s_256}");
    }

    #[test]
    fn small_layers_show_no_speedup() {
        // Table IV top-left corner: ~0.99-1.0x for 16x16, small channels, batch 1.
        let s = speedup(&layer(64, 64, 16), 1, Kernel::WinogradF4);
        assert!(s < 1.3, "small workload speedup should be ~1, got {s}");
    }

    #[test]
    fn speedups_stay_within_theoretical_bounds() {
        for kernel in [Kernel::WinogradF2, Kernel::WinogradF4] {
            let bound = match kernel {
                Kernel::WinogradF2 => 2.25,
                _ => 4.0,
            };
            for &(c, hw, b) in &[(64usize, 32usize, 1usize), (256, 64, 8), (512, 128, 8)] {
                let s = speedup(&layer(c, c, hw), b, kernel);
                assert!(
                    s <= bound * 1.05,
                    "{kernel}: speedup {s} exceeds the {bound}x MAC reduction"
                );
                assert!(s > 0.5, "{kernel}: speedup {s} implausibly low");
            }
        }
    }

    #[test]
    fn compute_heavy_f4_beats_f2() {
        let l = layer(256, 512, 64);
        let f2 = speedup(&l, 8, Kernel::WinogradF2);
        let f4 = speedup(&l, 8, Kernel::WinogradF4);
        assert!(
            f4 > f2,
            "F4 ({f4}) should outperform F2 ({f2}) on compute-heavy layers"
        );
    }

    #[test]
    fn paper_reference_point_is_close() {
        // Table IV reports 3.16x for (B=8, HW=32, Cin=256, Cout=512).
        let s = speedup(&layer(256, 512, 32), 8, Kernel::WinogradF4);
        assert!((2.4..4.0).contains(&s), "expected ~3.2x, got {s}");
    }

    #[test]
    fn winograd_reduces_total_energy_on_compute_heavy_layers() {
        let cfg = AcceleratorConfig::default();
        let l = layer(256, 256, 64);
        let base = simulate_layer(&l, 8, Kernel::Im2col, &cfg);
        let f4 = simulate_layer(&l, 8, Kernel::WinogradF4, &cfg);
        assert!(
            f4.energy.total_nj() < base.energy.total_nj(),
            "F4 energy {} should be below im2col energy {}",
            f4.energy.total_nj(),
            base.energy.total_nj()
        );
        // The cube dominates the im2col energy (Fig. 6 right).
        assert!(base.energy.cube_fraction() > 0.4);
    }

    #[test]
    fn breakdown_total_is_consistent() {
        let cfg = AcceleratorConfig::default();
        let run = simulate_layer(&layer(128, 128, 32), 8, Kernel::WinogradF4, &cfg);
        let b = &run.breakdown;
        assert!((b.total() - run.cycles).abs() < 1e-9);
        assert!(b.steady_state() >= b.cube);
        assert!(!run.breakdown.bottleneck().is_empty());
        assert!(run.effective_tops(&cfg) > 0.0);
    }

    #[test]
    #[should_panic(expected = "Winograd kernels require")]
    fn winograd_on_1x1_panics() {
        let cfg = AcceleratorConfig::default();
        let l = ConvLayer::conv1x1("pw", 64, 64, 32);
        let _ = simulate_layer(&l, 1, Kernel::WinogradF4, &cfg);
    }

    #[test]
    fn effective_tops_never_exceeds_peak_for_im2col() {
        let cfg = AcceleratorConfig::default();
        let run = simulate_layer(&layer(512, 512, 128), 8, Kernel::Im2col, &cfg);
        assert!(run.effective_tops(&cfg) <= cfg.peak_tops());
    }
}
