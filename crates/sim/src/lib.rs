//! Cycle-level performance and energy model of the Winograd-enhanced DSA.
//!
//! The paper evaluates its hardware extensions with an in-house event-based
//! simulator modelling a DaVinci-style AI accelerator (two AI cores, a
//! 16×32×16 int8 Cube Unit per core, software-managed scratchpads, memory
//! transfer engines and the new Winograd transformation engines). This crate
//! rebuilds an equivalent model:
//!
//! * [`config`] — the hardware configuration (Table V system: 8 TOp/s at
//!   500 MHz, 41 GB/s LPDDR4x, L0A/L0B/L0C/L1 scratchpads, engine
//!   parallelisms);
//! * [`cube`] — the MatMul datapath timing model;
//! * [`xform`] — the Winograd transformation engines (row-by-row slow/fast and
//!   tap-by-tap, Table I) with their throughput, bandwidth, area and power;
//! * [`dram`] — the external-memory model (bandwidth, latency, jitter);
//! * [`operators`] — per-layer execution of the im2col, Winograd F2 and
//!   Winograd F4 operators following the Listing-1 dataflow (double-buffered
//!   overlap of loads, transforms and MatMuls);
//! * [`energy`] — access counting and the energy model (Fig. 6);
//! * [`network`] — end-to-end network execution with per-layer kernel
//!   selection (Table VII);
//! * [`area_power`] — the area/power breakdown of Table V.
//!
//! The model is calibrated to the paper's published rates; it is a
//! cycle-accounting model with explicit overlap semantics, not an RTL-validated
//! event simulator, so absolute cycle counts are approximate while the
//! comparative trends (who wins, where the crossovers fall) are preserved.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area_power;
pub mod config;
pub mod cube;
pub mod dram;
pub mod energy;
pub mod network;
pub mod operators;
pub mod xform;

pub use area_power::{core_breakdown, AreaPowerEntry};
pub use config::{AcceleratorConfig, MemoryEnergyCosts, UnitPowers};
pub use cube::{cube_cycles, matmul_cycles};
pub use dram::DramModel;
pub use energy::{AccessCounts, EnergyBreakdown};
pub use network::{simulate_network, KernelChoice, LayerResult, NetworkResult};
pub use operators::{simulate_layer, CycleBreakdown, Kernel, LayerRun};
pub use xform::{EngineStyle, TransformEngine, XformKind};
