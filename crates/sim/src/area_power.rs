//! Area and power breakdown of the AI core (Table V).
//!
//! The paper reports post-place-and-route numbers in a 28 nm HKMG process at
//! 0.8 V / 500 MHz. This module reproduces Table V as a model-backed data
//! table: the compute-unit entries carry the published area/power values, and
//! the analytic transformation-engine model of [`crate::xform`] is used to
//! check that the relative sizes of the engines are consistent with their
//! resource counts.

use crate::config::AcceleratorConfig;
use crate::xform::TransformEngine;
use serde::{Deserialize, Serialize};

/// One row of the area/power breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaPowerEntry {
    /// Unit name.
    pub unit: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Share of the total core area (0..1).
    pub area_fraction: f64,
    /// Peak power in mW (0 for memories, which are reported per access).
    pub peak_power_mw: f64,
    /// Whether the unit belongs to the Winograd extension.
    pub winograd_extension: bool,
}

/// Total core area of the Table V breakdown in mm².
pub const CORE_AREA_MM2: f64 = 10.64;

/// The Table V breakdown of the AI core.
pub fn core_breakdown(cfg: &AcceleratorConfig) -> Vec<AreaPowerEntry> {
    let p = &cfg.unit_powers;
    let rows = vec![
        ("Cube", 2.04, p.cube_im2col_mw, false),
        ("MTE1 im2col", 0.03, p.im2col_mw, false),
        ("MTE1 IN_XFORM", 0.23, p.input_xform_mw, true),
        ("MTE1 WT_XFORM", 0.32, p.weight_xform_mw, true),
        ("FixPipe OUT_XFORM", 0.10, p.output_xform_mw, true),
        ("L0A", 0.32, 0.0, false),
        ("L0B", 0.32, 0.0, false),
        ("L0C", 1.24, 0.0, false),
        ("L1", 5.97, 0.0, false),
    ];
    rows.into_iter()
        .map(|(unit, area, power, wino)| AreaPowerEntry {
            unit: unit.to_string(),
            area_mm2: area,
            area_fraction: area / CORE_AREA_MM2,
            peak_power_mw: power,
            winograd_extension: wino,
        })
        .collect()
}

/// Fraction of the core area occupied by the Winograd extension
/// (the paper reports 6.1%).
pub fn winograd_extension_area_fraction(cfg: &AcceleratorConfig) -> f64 {
    let rows = core_breakdown(cfg);
    let ext: f64 = rows
        .iter()
        .filter(|r| r.winograd_extension)
        .map(|r| r.area_mm2)
        .sum();
    ext / CORE_AREA_MM2
}

/// Power of the Winograd transformation engines relative to the Cube Unit
/// (the paper reports ≈17% considering the engines active alongside the Cube).
pub fn winograd_extension_power_fraction(cfg: &AcceleratorConfig) -> f64 {
    let p = &cfg.unit_powers;
    // Input and output engines run concurrently with the Cube; the weight
    // engine is amortised over all activations (Section V-B2).
    (p.input_xform_mw + p.output_xform_mw) / cfg.unit_powers.cube_im2col_mw
}

/// Consistency check between the analytic engine model and the published area
/// ordering: returns the relative-area estimates (input, weight, output).
pub fn engine_relative_areas() -> (f64, f64, f64) {
    let input = TransformEngine::paper_input_engine().relative_area();
    let weight = TransformEngine::paper_weight_engine().relative_area();
    let output = TransformEngine::paper_output_engine().relative_area();
    (input, weight, output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_area_is_about_six_percent() {
        let f = winograd_extension_area_fraction(&AcceleratorConfig::default());
        assert!((0.05..0.08).contains(&f), "extension area fraction {f}");
    }

    #[test]
    fn extension_power_is_about_seventeen_percent_of_the_cube() {
        let f = winograd_extension_power_fraction(&AcceleratorConfig::default());
        assert!((0.14..0.20).contains(&f), "extension power fraction {f}");
    }

    #[test]
    fn cube_dominates_compute_area() {
        let rows = core_breakdown(&AcceleratorConfig::default());
        let cube = rows.iter().find(|r| r.unit == "Cube").unwrap();
        for r in rows.iter().filter(|r| r.winograd_extension) {
            assert!(
                cube.area_mm2 / r.area_mm2 >= 6.0,
                "Cube should be ≥6.4x larger than {}",
                r.unit
            );
        }
    }

    #[test]
    fn memories_dominate_total_area() {
        let rows = core_breakdown(&AcceleratorConfig::default());
        let mem: f64 = rows
            .iter()
            .filter(|r| r.unit.starts_with("L0") || r.unit == "L1")
            .map(|r| r.area_fraction)
            .sum();
        assert!(mem > 0.6, "memories should dominate: {mem}");
    }

    #[test]
    fn area_fractions_sum_to_about_one() {
        let rows = core_breakdown(&AcceleratorConfig::default());
        let sum: f64 = rows.iter().map(|r| r.area_fraction).sum();
        assert!((sum - 1.0).abs() < 0.05, "fractions sum {sum}");
    }

    #[test]
    fn output_engine_is_smallest_in_both_model_and_table() {
        let (input, _weight, output) = engine_relative_areas();
        // The output engine processes 16 channels vs 64 for the input engine.
        assert!(output < input);
        let rows = core_breakdown(&AcceleratorConfig::default());
        let a = |name: &str| {
            rows.iter()
                .find(|r| r.unit.contains(name))
                .unwrap()
                .area_mm2
        };
        assert!(a("OUT_XFORM") < a("IN_XFORM"));
    }
}
