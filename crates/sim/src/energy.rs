//! Memory-access counting and the energy model (Fig. 6, Table VII energy).

use crate::config::AcceleratorConfig;
use serde::{Deserialize, Serialize};

/// Bytes moved per memory level for one layer execution (whole system).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccessCounts {
    /// External-memory feature-map reads.
    pub gm_fm_read: f64,
    /// External-memory feature-map writes.
    pub gm_fm_write: f64,
    /// External-memory weight reads.
    pub gm_wt_read: f64,
    /// L1 feature-map writes.
    pub l1_fm_write: f64,
    /// L1 feature-map reads.
    pub l1_fm_read: f64,
    /// L1 weight writes.
    pub l1_wt_write: f64,
    /// L1 weight reads.
    pub l1_wt_read: f64,
    /// L0A writes.
    pub l0a_write: f64,
    /// L0A reads.
    pub l0a_read: f64,
    /// L0B writes.
    pub l0b_write: f64,
    /// L0B reads.
    pub l0b_read: f64,
    /// L0C writes.
    pub l0c_write: f64,
    /// L0C reads.
    pub l0c_read: f64,
}

impl AccessCounts {
    /// Elementwise sum of two access-count records.
    pub fn add(&self, other: &AccessCounts) -> AccessCounts {
        AccessCounts {
            gm_fm_read: self.gm_fm_read + other.gm_fm_read,
            gm_fm_write: self.gm_fm_write + other.gm_fm_write,
            gm_wt_read: self.gm_wt_read + other.gm_wt_read,
            l1_fm_write: self.l1_fm_write + other.l1_fm_write,
            l1_fm_read: self.l1_fm_read + other.l1_fm_read,
            l1_wt_write: self.l1_wt_write + other.l1_wt_write,
            l1_wt_read: self.l1_wt_read + other.l1_wt_read,
            l0a_write: self.l0a_write + other.l0a_write,
            l0a_read: self.l0a_read + other.l0a_read,
            l0b_write: self.l0b_write + other.l0b_write,
            l0b_read: self.l0b_read + other.l0b_read,
            l0c_write: self.l0c_write + other.l0c_write,
            l0c_read: self.l0c_read + other.l0c_read,
        }
    }

    /// Total bytes crossing the external-memory interface.
    pub fn gm_total(&self) -> f64 {
        self.gm_fm_read + self.gm_fm_write + self.gm_wt_read
    }
}

/// Energy breakdown of one layer (or a whole network) in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Cube Unit (MatMul datapath).
    pub cube_nj: f64,
    /// Input transformation engine (or im2col engine for the im2col kernel).
    pub input_xform_nj: f64,
    /// Weight transformation engine.
    pub weight_xform_nj: f64,
    /// Output transformation engine.
    pub output_xform_nj: f64,
    /// Vector Unit (re-quantization, elementwise ops).
    pub vector_nj: f64,
    /// L0A + L0B + L0C scratchpads.
    pub l0_nj: f64,
    /// L1 scratchpad.
    pub l1_nj: f64,
    /// External memory.
    pub dram_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.cube_nj
            + self.input_xform_nj
            + self.weight_xform_nj
            + self.output_xform_nj
            + self.vector_nj
            + self.l0_nj
            + self.l1_nj
            + self.dram_nj
    }

    /// Elementwise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            cube_nj: self.cube_nj + other.cube_nj,
            input_xform_nj: self.input_xform_nj + other.input_xform_nj,
            weight_xform_nj: self.weight_xform_nj + other.weight_xform_nj,
            output_xform_nj: self.output_xform_nj + other.output_xform_nj,
            vector_nj: self.vector_nj + other.vector_nj,
            l0_nj: self.l0_nj + other.l0_nj,
            l1_nj: self.l1_nj + other.l1_nj,
            dram_nj: self.dram_nj + other.dram_nj,
        }
    }

    /// Fraction of the total spent in the Cube Unit.
    pub fn cube_fraction(&self) -> f64 {
        if self.total_nj() <= 0.0 {
            0.0
        } else {
            self.cube_nj / self.total_nj()
        }
    }
}

/// Converts unit-activity cycles and memory access counts into the energy
/// breakdown, using the Table V power/energy coefficients.
///
/// `cube_active`, `in_xform_active`, `wt_xform_active`, `out_xform_active` and
/// `vector_active` are active-cycle counts (whole system), `winograd` selects
/// the higher Cube switching power of the denser Winograd operands.
#[allow(clippy::too_many_arguments)]
pub fn energy_from_activity(
    cfg: &AcceleratorConfig,
    cube_active: f64,
    in_xform_active: f64,
    wt_xform_active: f64,
    out_xform_active: f64,
    vector_active: f64,
    access: &AccessCounts,
    winograd: bool,
) -> EnergyBreakdown {
    // Energy per cycle: P[mW] = 1e-3 J/s, one cycle = 1/(f[MHz]·1e6) s,
    // so E = P/f in nanojoules per cycle.
    let nj_per_cycle = |mw: f64| mw / cfg.frequency_mhz;
    let p = &cfg.unit_powers;
    let m = &cfg.memory_energy;
    let cube_mw = if winograd {
        p.cube_winograd_mw
    } else {
        p.cube_im2col_mw
    };
    let in_mw = if winograd {
        p.input_xform_mw
    } else {
        p.im2col_mw
    };

    let l0c_read_cost = if winograd {
        m.l0c_port_b_winograd
    } else {
        m.l0c.0
    };
    let l0_nj = (access.l0a_read * m.l0a.0
        + access.l0a_write * m.l0a.1
        + access.l0b_read * m.l0b.0
        + access.l0b_write * m.l0b.1
        + access.l0c_read * l0c_read_cost
        + access.l0c_write * m.l0c.1)
        / 1000.0;
    let l1_nj = ((access.l1_fm_read + access.l1_wt_read) * m.l1.0
        + (access.l1_fm_write + access.l1_wt_write) * m.l1.1)
        / 1000.0;
    let dram_nj = access.gm_total() * m.dram / 1000.0;

    EnergyBreakdown {
        cube_nj: cube_active * nj_per_cycle(cube_mw),
        input_xform_nj: in_xform_active * nj_per_cycle(in_mw),
        weight_xform_nj: wt_xform_active * nj_per_cycle(p.weight_xform_mw),
        output_xform_nj: out_xform_active * nj_per_cycle(p.output_xform_mw),
        vector_nj: vector_active * nj_per_cycle(p.vector_mw),
        l0_nj,
        l1_nj,
        dram_nj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_sums() {
        let a = EnergyBreakdown {
            cube_nj: 1.0,
            l1_nj: 2.0,
            ..Default::default()
        };
        let b = EnergyBreakdown {
            dram_nj: 3.0,
            ..Default::default()
        };
        let c = a.add(&b);
        assert!((c.total_nj() - 6.0).abs() < 1e-12);
        assert!((a.cube_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn access_counts_add_and_total() {
        let a = AccessCounts {
            gm_fm_read: 10.0,
            gm_wt_read: 5.0,
            ..Default::default()
        };
        let b = AccessCounts {
            gm_fm_write: 2.0,
            l1_fm_read: 100.0,
            ..Default::default()
        };
        let c = a.add(&b);
        assert_eq!(c.gm_total(), 17.0);
        assert_eq!(c.l1_fm_read, 100.0);
    }

    #[test]
    fn cube_energy_scales_with_active_cycles_and_kernel() {
        let cfg = AcceleratorConfig::default();
        let access = AccessCounts::default();
        let im2col = energy_from_activity(&cfg, 1000.0, 0.0, 0.0, 0.0, 0.0, &access, false);
        let wino = energy_from_activity(&cfg, 1000.0, 0.0, 0.0, 0.0, 0.0, &access, true);
        assert!(wino.cube_nj > im2col.cube_nj);
        assert!((wino.cube_nj / im2col.cube_nj - 1923.0 / 1521.0).abs() < 1e-6);
    }

    #[test]
    fn dram_dominates_when_traffic_is_large() {
        let cfg = AcceleratorConfig::default();
        let access = AccessCounts {
            gm_fm_read: 1e6,
            ..Default::default()
        };
        let e = energy_from_activity(&cfg, 10.0, 0.0, 0.0, 0.0, 0.0, &access, false);
        assert!(e.dram_nj > e.cube_nj);
    }

    #[test]
    fn winograd_l0c_reads_cost_more() {
        let cfg = AcceleratorConfig::default();
        let access = AccessCounts {
            l0c_read: 1e6,
            ..Default::default()
        };
        let a = energy_from_activity(&cfg, 0.0, 0.0, 0.0, 0.0, 0.0, &access, false);
        let b = energy_from_activity(&cfg, 0.0, 0.0, 0.0, 0.0, 0.0, &access, true);
        assert!(b.l0_nj > a.l0_nj);
    }
}
