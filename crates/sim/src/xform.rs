//! Winograd transformation-engine models (Section IV-B1, Table I).
//!
//! Two implementation styles exist:
//!
//! * **row-by-row** — a spatial PE consumes one row of the tile per cycle and
//!   hardcodes the multiplication with the constant matrix using adders and
//!   fixed shifters. The *slow* variant reuses the same resources for the
//!   second half of the transformation (`h_T + w_T` cycles per transform); the
//!   *fast* variant allocates extra lanes and finishes in `h_T` cycles.
//! * **tap-by-tap** — a minimal PE (configurable shifter + adder + accumulator)
//!   unrolled in time; sparsity and common-subexpression sharing reduce the
//!   per-tap cycle count.
//!
//! The engine model exposes cycles-per-transform, bandwidth requirements
//! (Table I), and an analytic area/power estimate used for the Table V
//! design-space discussion.

use serde::{Deserialize, Serialize};

/// Which transformation an engine implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XformKind {
    /// Input transformation `Bᵀ·d·B` (int8 in, int8/10 out).
    Input,
    /// Weight transformation `G·f·Gᵀ` (int8 in, int8/10 out).
    Weight,
    /// Output transformation `Aᵀ·M·A` (int32 in, int8 out after rescale).
    Output,
}

/// The implementation style of a transformation engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineStyle {
    /// Row-by-row, resource-sharing variant (`h_T + w_T` cycles per transform).
    RowByRowSlow,
    /// Row-by-row with extra lanes (`h_T` cycles per transform).
    RowByRowFast,
    /// Tap-by-tap, time-unrolled PE.
    TapByTap {
        /// Parallel taps computed per PE (`P_t`).
        parallel_taps: usize,
    },
}

/// A configured transformation engine instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformEngine {
    /// Which transformation it performs.
    pub kind: XformKind,
    /// Implementation style.
    pub style: EngineStyle,
    /// Input tile edge `h_T` (6 for F4, 4 for F2).
    pub tile: usize,
    /// Parallel transforms along the channel dimension (`P_c`).
    pub parallel_channels: usize,
    /// Parallel transforms along the spatial dimension (`P_s`).
    pub parallel_spatial: usize,
}

impl TransformEngine {
    /// The paper's input-transformation engine for F4: fast row-by-row,
    /// 32 channels × 2 spatial tiles in parallel.
    pub fn paper_input_engine() -> Self {
        Self {
            kind: XformKind::Input,
            style: EngineStyle::RowByRowFast,
            tile: 6,
            parallel_channels: 32,
            parallel_spatial: 2,
        }
    }

    /// The paper's output-transformation engine for F4: fast row-by-row,
    /// 16 output channels in parallel.
    pub fn paper_output_engine() -> Self {
        Self {
            kind: XformKind::Output,
            style: EngineStyle::RowByRowFast,
            tile: 6,
            parallel_channels: 16,
            parallel_spatial: 1,
        }
    }

    /// The paper's weight-transformation engine: tap-by-tap (it naturally
    /// produces the fractal layout the Cube Unit expects), sized to match the
    /// external weight-load bandwidth.
    pub fn paper_weight_engine() -> Self {
        Self {
            kind: XformKind::Weight,
            style: EngineStyle::TapByTap { parallel_taps: 4 },
            tile: 6,
            parallel_channels: 8,
            parallel_spatial: 1,
        }
    }

    /// Total parallel transforms in flight.
    pub fn parallel_transforms(&self) -> usize {
        self.parallel_channels * self.parallel_spatial
    }

    /// Cycles needed by one PE for one full `t×t` transform (Table I).
    pub fn cycles_per_transform(&self) -> f64 {
        let h = self.tile as f64;
        match self.style {
            EngineStyle::RowByRowSlow => h + h,
            EngineStyle::RowByRowFast => h,
            EngineStyle::TapByTap { parallel_taps } => {
                // Worst case h·h cycles per tap; sparsity + CSE bring the
                // average down to roughly a third, and P_t taps proceed in
                // parallel inside the PE.
                let per_tap = (h * h / 3.0).max(1.0);
                let taps = h * h;
                (per_tap * taps / parallel_taps as f64).max(1.0)
            }
        }
    }

    /// Engine throughput in transforms per cycle.
    pub fn transforms_per_cycle(&self) -> f64 {
        self.parallel_transforms() as f64 / self.cycles_per_transform()
    }

    /// Cycles to transform `count` tiles.
    pub fn cycles_for(&self, count: usize) -> f64 {
        count as f64 / self.transforms_per_cycle()
    }

    /// Read bandwidth requirement in bytes/cycle (Table I), assuming int8
    /// elements for input/weight transforms and int32 for the output transform.
    pub fn read_bandwidth(&self) -> f64 {
        let elem = if self.kind == XformKind::Output {
            4.0
        } else {
            1.0
        };
        let h = self.tile as f64;
        match self.style {
            EngineStyle::RowByRowSlow | EngineStyle::RowByRowFast => {
                self.parallel_transforms() as f64 * h * elem
            }
            EngineStyle::TapByTap { .. } => self.parallel_transforms() as f64 * elem,
        }
    }

    /// Write bandwidth requirement in bytes/cycle (Table I).
    pub fn write_bandwidth(&self) -> f64 {
        // int8 output codes and int16 Winograd-domain words both leave one
        // byte-equivalent per element in this model.
        let elem = 1.0;
        let h = self.tile as f64;
        match self.style {
            EngineStyle::RowByRowSlow => self.parallel_transforms() as f64 * h * elem,
            EngineStyle::RowByRowFast => {
                self.parallel_transforms() as f64 * h * h / self.cycles_per_transform() * elem
            }
            EngineStyle::TapByTap { .. } => self.parallel_transforms() as f64 * elem,
        }
    }

    /// Analytic adder-count estimate of one PE, used for the area comparison of
    /// the design-space exploration. The row-by-row fast variant needs
    /// `w_T × w_T` extra output-stationary lanes; the tap-by-tap PE is a single
    /// shifter+adder per parallel tap.
    pub fn adders_per_pe(&self) -> usize {
        let t = self.tile;
        match self.style {
            // One adder tree over t inputs per output column plus the second-stage lanes.
            EngineStyle::RowByRowSlow => t * t,
            EngineStyle::RowByRowFast => t * t + t * t,
            EngineStyle::TapByTap { parallel_taps } => parallel_taps,
        }
    }

    /// Relative area estimate (adders × parallel transforms), normalised to an
    /// arbitrary unit; used to compare engine variants.
    pub fn relative_area(&self) -> f64 {
        (self.adders_per_pe() * self.parallel_transforms()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_cycle_counts() {
        let slow = TransformEngine {
            style: EngineStyle::RowByRowSlow,
            ..TransformEngine::paper_input_engine()
        };
        let fast = TransformEngine::paper_input_engine();
        assert_eq!(slow.cycles_per_transform(), 12.0); // h + w = 6 + 6
        assert_eq!(fast.cycles_per_transform(), 6.0); // h
    }

    #[test]
    fn paper_input_engine_matches_section_iv_rates() {
        let engine = TransformEngine::paper_input_engine();
        assert_eq!(engine.parallel_transforms(), 64);
        // 64 transforms every 6 cycles ≈ 10.7 transforms/cycle.
        assert!((engine.transforms_per_cycle() - 64.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn slow_engine_is_smaller_but_slower_than_fast() {
        let slow = TransformEngine {
            style: EngineStyle::RowByRowSlow,
            ..TransformEngine::paper_output_engine()
        };
        let fast = TransformEngine::paper_output_engine();
        assert!(slow.relative_area() < fast.relative_area());
        assert!(slow.cycles_for(1000) > fast.cycles_for(1000));
    }

    #[test]
    fn tap_by_tap_has_lowest_bandwidth_needs() {
        let tap = TransformEngine::paper_weight_engine();
        let row = TransformEngine {
            style: EngineStyle::RowByRowFast,
            ..TransformEngine::paper_weight_engine()
        };
        assert!(tap.read_bandwidth() < row.read_bandwidth());
        assert!(tap.write_bandwidth() <= row.write_bandwidth());
    }

    #[test]
    fn more_parallel_taps_speed_up_tap_by_tap() {
        let mut e = TransformEngine::paper_weight_engine();
        let slow = e.cycles_for(100);
        e.style = EngineStyle::TapByTap { parallel_taps: 8 };
        assert!(e.cycles_for(100) < slow);
    }

    #[test]
    fn output_engine_reads_int32() {
        let out = TransformEngine::paper_output_engine();
        let inp = TransformEngine::paper_input_engine();
        // Same parallelism would read 4x the bytes; here parallelisms differ but
        // the per-transform element size is 4x.
        let out_per_transform = out.read_bandwidth() / out.parallel_transforms() as f64;
        let in_per_transform = inp.read_bandwidth() / inp.parallel_transforms() as f64;
        assert!((out_per_transform / in_per_transform - 4.0).abs() < 1e-9);
    }
}
