//! A process-wide registry of named counters, gauges and histograms.
//!
//! Handles are cheap clones of `Arc`ed atomics: look a metric up once by
//! name at setup time ([`counter`] / [`gauge`] / [`histogram`]), then update
//! it lock-free on the hot path. [`render_metrics`] reduces the whole
//! registry to one aligned table — the text a live server answers a
//! `Frame::Stats` request with — and [`metrics_snapshot`] returns the same
//! data structurally for tests and exporters.
//!
//! Histograms bucket by power of two (one bucket per bit width), which is
//! coarse but monotonic: quantile estimates never cross and never allocate.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const BUCKETS: usize = 64;

/// A monotonically increasing count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger (a high-water mark).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistInner {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A power-of-two-bucketed value distribution.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistInner>);

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize % BUCKETS
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        let h = &self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of every observation.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (nearest rank over the bucket counts; 0 when empty). Because buckets
    /// are fixed, estimates for increasing `q` never decrease.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds values in [2^(i-1), 2^i); report the upper
                // bound, capped by the exact max.
                let upper = if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
                return upper.min(self.max());
            }
        }
        self.max()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// What kind of metric a snapshot row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count.
    Counter,
    /// Last-write-wins value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

/// One row of [`metrics_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Registered name.
    pub name: String,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// Counter/gauge value, or the histogram's observation count.
    pub value: u64,
    /// Histogram only: (mean, p50, p95, p99, max).
    pub distribution: Option<(f64, u64, u64, u64, u64)>,
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static METRICS: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    METRICS.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Poison-tolerant lock: a kind-mismatch panic under the lock never leaves
/// the map half-written, so recovering the guard is sound.
fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Metric>> {
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// The counter registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Counter {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter::default()))
    {
        Metric::Counter(c) => c.clone(),
        other => panic!("metric {name:?} already registered as {other:?}"),
    }
}

/// The gauge registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> Gauge {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Gauge::default()))
    {
        Metric::Gauge(g) => g.clone(),
        other => panic!("metric {name:?} already registered as {other:?}"),
    }
}

/// The histogram registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Histogram::default()))
    {
        Metric::Histogram(h) => h.clone(),
        other => panic!("metric {name:?} already registered as {other:?}"),
    }
}

/// Structured point-in-time copy of every registered metric, sorted by name.
pub fn metrics_snapshot() -> Vec<MetricSnapshot> {
    let reg = lock_registry();
    reg.iter()
        .map(|(name, m)| match m {
            Metric::Counter(c) => MetricSnapshot {
                name: name.clone(),
                kind: MetricKind::Counter,
                value: c.get(),
                distribution: None,
            },
            Metric::Gauge(g) => MetricSnapshot {
                name: name.clone(),
                kind: MetricKind::Gauge,
                value: g.get(),
                distribution: None,
            },
            Metric::Histogram(h) => MetricSnapshot {
                name: name.clone(),
                kind: MetricKind::Histogram,
                value: h.count(),
                distribution: Some((
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max(),
                )),
            },
        })
        .collect()
}

/// The whole registry as one aligned table.
pub fn render_metrics() -> String {
    let rows = metrics_snapshot();
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
    let mut out = String::new();
    let _ = writeln!(out, "{:<name_w$}  {:>9}  value", "metric", "kind");
    for r in rows {
        match r.kind {
            MetricKind::Counter => {
                let _ = writeln!(out, "{:<name_w$}  {:>9}  {}", r.name, "counter", r.value);
            }
            MetricKind::Gauge => {
                let _ = writeln!(out, "{:<name_w$}  {:>9}  {}", r.name, "gauge", r.value);
            }
            MetricKind::Histogram => {
                let (mean, p50, p95, p99, max) = r.distribution.unwrap_or_default();
                let _ = writeln!(
                    out,
                    "{:<name_w$}  {:>9}  n={} mean={:.1} p50≤{} p95≤{} p99≤{} max={}",
                    r.name, "histogram", r.value, mean, p50, p95, p99, max
                );
            }
        }
    }
    out
}

/// Drops every registered metric. Existing handles keep working but are no
/// longer rendered; intended for tests.
pub fn reset_metrics() {
    lock_registry().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_share_state() {
        let c1 = counter("test.metrics.counter-a");
        let c2 = counter("test.metrics.counter-a");
        c1.inc();
        c2.add(4);
        assert_eq!(c1.get(), 5, "both handles hit the same counter");
        let g = gauge("test.metrics.gauge-a");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7, "set_max never lowers");
        g.set_max(11);
        assert_eq!(g.get(), 11);
        let snap = metrics_snapshot();
        assert!(snap
            .iter()
            .any(|m| m.name == "test.metrics.counter-a" && m.value == 5));
    }

    #[test]
    fn histogram_quantiles_are_monotonic_upper_bounds() {
        let h = histogram("test.metrics.hist-a");
        for v in [1u64, 2, 3, 100, 1000, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 5000);
        assert!((h.mean() - 6106.0 / 6.0).abs() < 1e-9);
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max());
        assert!(p50 >= 3, "the median observation is 3, in bucket [2,4)");
        assert_eq!(h.quantile(1.0), 5000, "top quantile capped by exact max");
        let empty = histogram("test.metrics.hist-empty");
        assert_eq!(empty.quantile(0.99), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn render_lists_every_kind() {
        counter("test.metrics.render-c").inc();
        gauge("test.metrics.render-g").set(9);
        histogram("test.metrics.render-h").record(128);
        let table = render_metrics();
        assert!(table.contains("test.metrics.render-c"));
        assert!(table.contains("counter"));
        assert!(table.contains("gauge"));
        assert!(table.contains("histogram"));
        assert!(table.contains("p99"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        counter("test.metrics.kind-clash");
        let _ = gauge("test.metrics.kind-clash");
    }
}
