//! Per-thread lock-free event rings.
//!
//! Each recording thread owns one fixed-capacity ring it alone writes;
//! overwriting the oldest event when full means a long run keeps the most
//! recent window instead of failing or blocking. A drain from another thread
//! reads the slots through per-slot sequence counters (a seqlock): a slot
//! mid-overwrite is simply skipped, so the writer never waits on a reader
//! and the reader never sees a torn event. Everything is `std` atomics — no
//! unsafe, no locks on the recording path.

use crate::{ring_capacity, sym_name, Category, Sym};
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Whether an event is a duration or a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span with a duration.
    Span,
    /// A zero-duration marker.
    Instant,
}

/// One decoded trace event, as returned by [`drain_events`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The interned name the event was recorded under.
    pub name: String,
    /// Stack layer.
    pub cat: Category,
    /// Span or instant.
    pub kind: EventKind,
    /// Start, in nanoseconds since the trace epoch.
    pub t0_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Correlation id (wire request id, graph node index, …).
    pub id: u64,
    /// The recording thread's trace-local id.
    pub tid: u32,
}

/// One event packed into four words behind a per-slot seqlock.
///
/// Word 3 packs `sym << 32 | cat << 8 | kind`; an empty slot keeps the
/// sentinel `u64::MAX` there (no sym can reach `u32::MAX` in practice, and
/// `cat` never decodes from `0xFF`), so a never-written slot is
/// distinguishable without a separate flag.
struct Slot {
    seq: AtomicU32,
    words: [AtomicU64; 4],
}

const EMPTY_W3: u64 = u64::MAX;

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU32::new(0),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(EMPTY_W3),
            ],
        }
    }

    /// Single-writer publish: bump to odd, store the payload, bump to even.
    fn write(&self, words: [u64; 4]) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        for (slot, w) in self.words.iter().zip(words) {
            slot.store(w, Ordering::Relaxed);
        }
        self.seq.store(s.wrapping_add(2), Ordering::Release);
    }

    /// Seqlocked read; `None` when the slot is empty or mid-overwrite.
    fn read(&self) -> Option<[u64; 4]> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 != 0 {
            return None;
        }
        let words = [
            self.words[0].load(Ordering::Relaxed),
            self.words[1].load(Ordering::Relaxed),
            self.words[2].load(Ordering::Relaxed),
            self.words[3].load(Ordering::Relaxed),
        ];
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != s1 || words[3] == EMPTY_W3 {
            return None;
        }
        Some(words)
    }
}

/// One thread's ring. Only the owning thread writes; any thread may drain.
struct ThreadRing {
    tid: u32,
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    fn new(tid: u32, capacity: usize) -> Self {
        Self {
            tid,
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
        }
    }

    fn push(&self, words: [u64; 4]) {
        let h = self.head.load(Ordering::Relaxed);
        self.slots[(h % self.slots.len() as u64) as usize].write(words);
        self.head.store(h.wrapping_add(1), Ordering::Release);
    }

    fn drain_into(&self, out: &mut Vec<Event>) {
        let _ = self.head.load(Ordering::Acquire);
        for slot in self.slots.iter() {
            if let Some(w) = slot.read() {
                let sym = Sym((w[3] >> 32) as u32);
                let cat = Category::from_byte(((w[3] >> 8) & 0xFF) as u8);
                let kind = if w[3] & 0xFF == 0 {
                    EventKind::Span
                } else {
                    EventKind::Instant
                };
                out.push(Event {
                    name: sym_name(sym),
                    cat,
                    kind,
                    t0_ns: w[0],
                    dur_ns: w[1],
                    id: w[2],
                    tid: self.tid,
                });
            }
        }
    }

    fn clear(&self) {
        // Owner-agnostic reset: seqlocked writes from the draining thread
        // are safe because clearing only runs from explicit test/export
        // paths, and a concurrent writer's slot simply wins the race.
        for slot in self.slots.iter() {
            slot.write([0, 0, 0, EMPTY_W3]);
        }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Rings whose owning thread exited, ready for adoption by a new thread.
/// The kernels' fork–join helpers spawn fresh scoped threads per call;
/// without recycling every such thread would leak one ring into the
/// registry. A recycled ring keeps its events (the registry still holds it,
/// so a drain after the fork–join sees the workers' spans).
fn free_pool() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static POOL: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// The thread-local handle; returns the ring to the free pool at thread
/// exit.
struct LocalRing(Arc<ThreadRing>);

impl Drop for LocalRing {
    fn drop(&mut self) {
        free_pool()
            .lock()
            .expect("ring free pool poisoned")
            .push(Arc::clone(&self.0));
    }
}

thread_local! {
    static LOCAL_RING: OnceLock<LocalRing> = const { OnceLock::new() };
}

fn local_ring_with(f: impl FnOnce(&ThreadRing)) {
    LOCAL_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let recycled = free_pool().lock().expect("ring free pool poisoned").pop();
            LocalRing(recycled.unwrap_or_else(|| {
                let mut rings = registry().lock().expect("ring registry poisoned");
                let ring = Arc::new(ThreadRing::new(rings.len() as u32, ring_capacity()));
                rings.push(Arc::clone(&ring));
                ring
            }))
        });
        f(&ring.0);
    });
}

/// Records one event into the calling thread's ring. Callers have already
/// checked the enabled gate.
pub(crate) fn record(sym: Sym, cat: Category, kind: EventKind, t0_ns: u64, dur_ns: u64, id: u64) {
    let w3 = (u64::from(sym.0) << 32)
        | (u64::from(cat as u8) << 8)
        | (kind == EventKind::Instant) as u64;
    local_ring_with(|ring| ring.push([t0_ns, dur_ns, id, w3]));
}

/// Snapshots every thread's ring into one list sorted by start time. The
/// rings keep their contents (a later drain sees the same events plus newer
/// ones); use [`clear_events`] to start a fresh window.
pub fn drain_events() -> Vec<Event> {
    let rings = registry().lock().expect("ring registry poisoned");
    let mut out = Vec::new();
    for ring in rings.iter() {
        ring.drain_into(&mut out);
    }
    drop(rings);
    out.sort_by_key(|e| (e.t0_ns, e.tid));
    out
}

/// Empties every thread's ring.
pub fn clear_events() {
    let rings = registry().lock().expect("ring registry poisoned");
    for ring in rings.iter() {
        ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_guard;
    use crate::{install, instant, intern, set_detail, span, Detail, TraceConfig};

    #[test]
    fn ring_overwrites_oldest_beyond_capacity() {
        let ring = ThreadRing::new(9, 16);
        let sym = intern("ring-fill");
        let w3 = (u64::from(sym.0) << 32) | 1; // instant, cat Node
        for i in 0..40u64 {
            ring.push([i, 0, i, w3]);
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 16, "capacity bounds the retained window");
        let mut ids: Vec<u64> = out.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(
            ids,
            (24..40).collect::<Vec<u64>>(),
            "the newest events survive, the oldest are overwritten"
        );
        assert!(out.iter().all(|e| e.tid == 9));
    }

    #[test]
    fn cross_thread_events_merge_sorted() {
        let _g = test_guard();
        install(TraceConfig {
            detail: Detail::Spans,
            ring_capacity: 256,
        });
        clear_events();
        let sym = intern("cross-thread");
        instant(sym, Category::Serve, 1);
        std::thread::spawn(move || {
            let _s = span(sym, Category::Node, 2);
        })
        .join()
        .unwrap();
        instant(sym, Category::Serve, 3);
        let events: Vec<Event> = drain_events()
            .into_iter()
            .filter(|e| e.name == "cross-thread")
            .collect();
        set_detail(Detail::Off);
        assert_eq!(events.len(), 3);
        let tids: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
        assert!(tids.len() >= 2, "the spawned thread got its own ring");
        assert!(
            events.windows(2).all(|w| w[0].t0_ns <= w[1].t0_ns),
            "drain must sort by start time"
        );
    }

    #[test]
    fn concurrent_writer_and_drainer_never_tear() {
        let _g = test_guard();
        install(TraceConfig {
            detail: Detail::Spans,
            ring_capacity: 64,
        });
        clear_events();
        let sym = intern("tear-check");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // id and dur always agree; a torn read would break that.
                    crate::ring::record(sym, Category::Kernel, EventKind::Span, i, i * 3, i);
                    i += 1;
                }
            })
        };
        for _ in 0..200 {
            for e in drain_events() {
                if e.name == "tear-check" {
                    assert_eq!(e.dur_ns, e.id * 3, "torn event: {e:?}");
                    assert_eq!(e.t0_ns, e.id, "torn event: {e:?}");
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        set_detail(Detail::Off);
    }
}
