//! Zero-overhead-when-off tracing for the Winograd serving stack.
//!
//! The paper (Andri et al., MICRO 2022) argues its datapath with *per-phase*
//! breakdowns — input transform vs. tap GEMMs vs. output transform — and the
//! serving tier needs reconstructable request timelines. This crate provides
//! both without taxing the hot path when nobody is looking:
//!
//! * a **span/event API** ([`span`], [`instant`]) writing into per-thread
//!   lock-free ring buffers (fixed capacity, overwrite-oldest, monotonic
//!   timestamps from one process-wide [`std::time::Instant`] epoch). When
//!   the process-global [`TraceConfig`] is off, every probe site costs one
//!   relaxed atomic load and a predictable branch;
//! * a **Chrome-trace JSON exporter** ([`export_chrome_trace`]) in the
//!   `chrome://tracing` / Perfetto event format;
//! * an aggregated **per-phase profile** ([`PhaseProbe`] / [`PhaseProfile`]):
//!   per-node, per-phase nanosecond totals and call counts, cheap enough to
//!   accumulate from inside the kernels' parallel strip-group workers;
//! * a process-wide **metrics registry** ([`counter`], [`gauge`],
//!   [`histogram`]) the serving stack re-registers its counters into, with a
//!   single rendered table ([`render_metrics`]).
//!
//! Two detail levels ([`Detail`]): `Spans` records node/request/scheduler
//! spans, `Full` additionally times the kernel phases (gather, input
//! transform, tap GEMM, output transform, epilogue, scatter) inside the
//! strip-group loops.
//!
//! ```
//! use wino_trace as trace;
//! trace::install(trace::TraceConfig {
//!     detail: trace::Detail::Full,
//!     ring_capacity: 4096,
//! });
//! let sym = trace::intern("work");
//! {
//!     let _span = trace::span(sym, trace::Category::Node, 7);
//!     // ... the traced work ...
//! }
//! let json = trace::export_chrome_trace();
//! assert!(json.contains("\"work\""));
//! trace::set_detail(trace::Detail::Off);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod metrics;
pub mod profile;
pub mod ring;

pub use chrome::{chrome_trace_json, export_chrome_trace};
pub use metrics::{
    counter, gauge, histogram, metrics_snapshot, render_metrics, reset_metrics, Counter, Gauge,
    Histogram, MetricKind, MetricSnapshot,
};
pub use profile::{Phase, PhaseClock, PhaseProbe, PhaseProfile, PhaseSnapshot, PHASE_COUNT};
pub use ring::{clear_events, drain_events, Event, EventKind};

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global configuration
// ---------------------------------------------------------------------------

/// How much the tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Detail {
    /// Nothing is recorded; every probe site costs one relaxed atomic load.
    Off = 0,
    /// Node, request and scheduler spans/events.
    Spans = 1,
    /// `Spans` plus per-phase kernel timing inside the strip-group loops.
    Full = 2,
}

impl Detail {
    /// Parses `"off"` / `"0"`, `"spans"` / `"1"`, `"full"` / `"2"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(Self::Off),
            "spans" | "1" | "on" => Some(Self::Spans),
            "full" | "2" => Some(Self::Full),
            _ => None,
        }
    }
}

/// The process-global tracer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Recording detail level.
    pub detail: Detail,
    /// Events each thread's ring holds before overwriting the oldest.
    /// Applies to rings created after [`install`]; existing rings keep their
    /// capacity.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            detail: Detail::Off,
            ring_capacity: 16 * 1024,
        }
    }
}

static DETAIL: AtomicU8 = AtomicU8::new(0);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(16 * 1024);

/// Applies `config` process-wide and pins the timestamp epoch.
pub fn install(config: TraceConfig) {
    RING_CAPACITY.store(config.ring_capacity.max(16), Ordering::SeqCst);
    let _ = epoch();
    set_detail(config.detail);
}

/// Installs the detail level named by the `WINO_TRACE` environment variable
/// (`off`/`spans`/`full`, default off) and returns it.
pub fn init_from_env() -> Detail {
    let detail = std::env::var("WINO_TRACE")
        .ok()
        .and_then(|v| Detail::parse(&v))
        .unwrap_or(Detail::Off);
    install(TraceConfig {
        detail,
        ..TraceConfig::default()
    });
    detail
}

/// Switches the recording detail level.
pub fn set_detail(detail: Detail) {
    DETAIL.store(detail as u8, Ordering::SeqCst);
}

/// The current detail level.
pub fn detail() -> Detail {
    match DETAIL.load(Ordering::Relaxed) {
        0 => Detail::Off,
        1 => Detail::Spans,
        _ => Detail::Full,
    }
}

/// Whether anything records at all. This is the hot-path gate: one relaxed
/// atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    DETAIL.load(Ordering::Relaxed) != 0
}

/// Whether kernel-phase timing records ([`Detail::Full`]).
#[inline(always)]
pub fn full_enabled() -> bool {
    DETAIL.load(Ordering::Relaxed) >= Detail::Full as u8
}

pub(crate) fn ring_capacity() -> usize {
    RING_CAPACITY.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Timebase
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process-wide trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------------

/// An interned event name. Events store the 4-byte symbol, so recording
/// never touches a string; intern at setup time (graph prepare, server
/// start), not per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(pub(crate) u32);

fn interner() -> &'static Mutex<Vec<String>> {
    static NAMES: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Interns `name`, returning its stable symbol. Idempotent: the same string
/// always maps to the same [`Sym`].
pub fn intern(name: &str) -> Sym {
    let mut names = interner().lock().expect("interner poisoned");
    if let Some(i) = names.iter().position(|n| n == name) {
        return Sym(i as u32);
    }
    names.push(name.to_string());
    Sym((names.len() - 1) as u32)
}

/// The string a symbol was interned from (`"?"` for a foreign symbol).
pub fn sym_name(sym: Sym) -> String {
    let names = interner().lock().expect("interner poisoned");
    names
        .get(sym.0 as usize)
        .cloned()
        .unwrap_or_else(|| "?".to_string())
}

// ---------------------------------------------------------------------------
// Event categories and the span/instant API
// ---------------------------------------------------------------------------

/// What layer of the stack an event came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Category {
    /// One graph-node execution (executor layer).
    Node = 0,
    /// One kernel phase block inside a strip-group worker.
    Phase = 1,
    /// Scheduler / request lifecycle (serving layer).
    Serve = 2,
    /// Low-level kernel helpers (GEMM calls, parallel workers).
    Kernel = 3,
}

impl Category {
    pub(crate) fn from_byte(b: u8) -> Self {
        match b {
            0 => Self::Node,
            1 => Self::Phase,
            2 => Self::Serve,
            _ => Self::Kernel,
        }
    }

    /// The Chrome-trace category string.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Node => "node",
            Self::Phase => "phase",
            Self::Serve => "serve",
            Self::Kernel => "kernel",
        }
    }
}

/// A live span; records one complete event over its lifetime when tracing
/// was enabled at construction. Dropping is the only way to end it.
#[derive(Debug)]
#[must_use = "a span records the duration until it is dropped"]
pub struct Span {
    sym: Sym,
    cat: Category,
    id: u64,
    start_ns: u64,
    live: bool,
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            let end = now_ns();
            ring::record(
                self.sym,
                self.cat,
                EventKind::Span,
                self.start_ns,
                end.saturating_sub(self.start_ns),
                self.id,
            );
        }
    }
}

/// Opens a span (recorded on drop). A no-op beyond one relaxed atomic load
/// when tracing is off.
#[inline]
pub fn span(sym: Sym, cat: Category, id: u64) -> Span {
    let live = enabled();
    Span {
        sym,
        cat,
        id,
        start_ns: if live { now_ns() } else { 0 },
        live,
    }
}

/// Like [`span`], but only live at [`Detail::Full`] — for kernel-interior
/// probe sites.
#[inline]
pub fn span_full(sym: Sym, cat: Category, id: u64) -> Span {
    let live = full_enabled();
    Span {
        sym,
        cat,
        id,
        start_ns: if live { now_ns() } else { 0 },
        live,
    }
}

/// Records a zero-duration instant event. A no-op when tracing is off.
#[inline]
pub fn instant(sym: Sym, cat: Category, id: u64) {
    if enabled() {
        ring::record(sym, cat, EventKind::Instant, now_ns(), 0, id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer state is process-global; every test that flips it runs
    // under this lock so assertions about "what was recorded" stay exact.
    pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        match GUARD.get_or_init(|| Mutex::new(())).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn interning_is_idempotent_and_reversible() {
        let a = intern("alpha-sym");
        let b = intern("alpha-sym");
        let c = intern("beta-sym");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(sym_name(a), "alpha-sym");
        assert_eq!(sym_name(c), "beta-sym");
        assert_eq!(sym_name(Sym(u32::MAX)), "?");
    }

    #[test]
    fn detail_parses_the_env_grammar() {
        assert_eq!(Detail::parse("off"), Some(Detail::Off));
        assert_eq!(Detail::parse("0"), Some(Detail::Off));
        assert_eq!(Detail::parse("spans"), Some(Detail::Spans));
        assert_eq!(Detail::parse("FULL"), Some(Detail::Full));
        assert_eq!(Detail::parse("2"), Some(Detail::Full));
        assert_eq!(Detail::parse("banana"), None);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = test_guard();
        set_detail(Detail::Off);
        clear_events();
        let sym = intern("should-not-appear");
        {
            let _s = span(sym, Category::Node, 1);
            instant(sym, Category::Serve, 2);
        }
        assert!(
            drain_events().iter().all(|e| e.name != "should-not-appear"),
            "events recorded while off"
        );
    }

    #[test]
    fn spans_and_instants_record_when_enabled() {
        let _g = test_guard();
        install(TraceConfig {
            detail: Detail::Spans,
            ring_capacity: 256,
        });
        clear_events();
        let s_sym = intern("a-span");
        let i_sym = intern("an-instant");
        {
            let _s = span(s_sym, Category::Node, 42);
            std::thread::sleep(std::time::Duration::from_millis(1));
            instant(i_sym, Category::Serve, 43);
        }
        // Full-only sites stay silent at Spans detail.
        let _quiet = span_full(intern("full-only"), Category::Phase, 0);
        drop(_quiet);
        let events = drain_events();
        set_detail(Detail::Off);
        let sp = events
            .iter()
            .find(|e| e.name == "a-span")
            .expect("span missing");
        assert_eq!(sp.kind, EventKind::Span);
        assert_eq!(sp.id, 42);
        assert!(sp.dur_ns >= 1_000_000, "span shorter than the sleep inside");
        let inst = events
            .iter()
            .find(|e| e.name == "an-instant")
            .expect("instant missing");
        assert_eq!(inst.kind, EventKind::Instant);
        assert_eq!(inst.dur_ns, 0);
        assert!(
            !events.iter().any(|e| e.name == "full-only"),
            "full-detail site fired at Spans level"
        );
        // The instant happened inside the span's window.
        assert!(inst.t0_ns >= sp.t0_ns && inst.t0_ns <= sp.t0_ns + sp.dur_ns);
    }
}
