//! Aggregated per-phase kernel profiling.
//!
//! The tap-major pipeline has a fixed phase structure — gather, input
//! transform, tap GEMMs, output transform, epilogue emit, strip merge — and
//! the paper's whole argument is about where time goes between them. A
//! [`PhaseProbe`] hangs off one prepared conv; every parallel strip-group
//! worker accumulates its block timings locally in a [`PhaseClock`] and
//! flushes them into the probe's atomics once per group, so the shared
//! counters are touched a handful of times per forward, not per tile.
//! [`PhaseProfile`] is the per-node reduction surfaced through
//! `PreparedGraph`.

use crate::full_enabled;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The phases of the tap-major Winograd pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Extracting input tiles into SoA lanes (with zero padding).
    Gather = 0,
    /// The two-stage `BᵀdB` input congruence transform (+ tap-wise
    /// requantization on the integer path).
    InputTransform = 1,
    /// One dense GEMM per Winograd tap (`M[tap] = U[tap]·V[tap]`).
    TapGemm = 2,
    /// The two-stage `AᵀmA` output transform (+ per-tap rescale on the
    /// integer path).
    OutputTransform = 3,
    /// The fused epilogue emit + scatter into the strip buffer (bias,
    /// residual, ReLU, requantization).
    Epilogue = 4,
    /// The sequential merge of strip buffers into the output tensor.
    Scatter = 5,
}

/// How many [`Phase`] variants exist.
pub const PHASE_COUNT: usize = 6;

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Gather,
        Phase::InputTransform,
        Phase::TapGemm,
        Phase::OutputTransform,
        Phase::Epilogue,
        Phase::Scatter,
    ];

    /// Stable snake_case name (used in traces, tables and bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Gather => "gather",
            Phase::InputTransform => "input_transform",
            Phase::TapGemm => "tap_gemm",
            Phase::OutputTransform => "output_transform",
            Phase::Epilogue => "epilogue",
            Phase::Scatter => "scatter",
        }
    }
}

/// Shared per-node phase accumulators (ns totals + block counts). Cheap to
/// own unconditionally: it is only ever written when [`crate::Detail::Full`]
/// is active.
#[derive(Debug, Default)]
pub struct PhaseProbe {
    label: String,
    trace_id: AtomicU64,
    ns: [AtomicU64; PHASE_COUNT],
    calls: [AtomicU64; PHASE_COUNT],
}

impl PhaseProbe {
    /// A zeroed probe labeled for reports (typically the graph node name).
    pub fn new(label: &str) -> Self {
        Self {
            label: label.to_string(),
            ..Self::default()
        }
    }

    /// Sets the correlation id kernel spans carry (the graph node index, or
    /// a wire request id).
    pub fn set_trace_id(&self, id: u64) {
        self.trace_id.store(id, Ordering::Relaxed);
    }

    /// The correlation id for spans emitted against this probe.
    pub fn trace_id(&self) -> u64 {
        self.trace_id.load(Ordering::Relaxed)
    }

    /// The probe's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Adds `ns` nanoseconds and one block call to `phase`.
    pub fn add(&self, phase: Phase, ns: u64, calls: u64) {
        if ns == 0 && calls == 0 {
            return;
        }
        self.ns[phase as usize].fetch_add(ns, Ordering::Relaxed);
        self.calls[phase as usize].fetch_add(calls, Ordering::Relaxed);
    }

    /// A point-in-time copy of the accumulators.
    pub fn snapshot(&self) -> PhaseSnapshot {
        PhaseSnapshot {
            label: self.label.clone(),
            ns: std::array::from_fn(|i| self.ns[i].load(Ordering::Relaxed)),
            calls: std::array::from_fn(|i| self.calls[i].load(Ordering::Relaxed)),
        }
    }

    /// Zeroes the accumulators (a fresh measurement window).
    pub fn reset(&self) {
        for i in 0..PHASE_COUNT {
            self.ns[i].store(0, Ordering::Relaxed);
            self.calls[i].store(0, Ordering::Relaxed);
        }
    }
}

/// A worker-local phase stopwatch: [`PhaseClock::lap`] attributes the time
/// since the previous lap to a phase, and [`PhaseClock::flush`] folds the
/// totals into a shared [`PhaseProbe`] once. Costs one relaxed atomic load
/// to construct when profiling is off, and nothing thereafter.
#[derive(Debug)]
pub struct PhaseClock {
    on: bool,
    last: Option<Instant>,
    ns: [u64; PHASE_COUNT],
    calls: [u64; PHASE_COUNT],
}

impl PhaseClock {
    /// Starts a clock; live only when [`crate::Detail::Full`] is active.
    #[inline]
    pub fn start() -> Self {
        let on = full_enabled();
        Self {
            on,
            last: on.then(Instant::now),
            ns: [0; PHASE_COUNT],
            calls: [0; PHASE_COUNT],
        }
    }

    /// Whether this clock is recording.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Attributes the time since the previous lap (or construction) to
    /// `phase` and restarts the stopwatch.
    #[inline]
    pub fn lap(&mut self, phase: Phase) {
        if let Some(last) = self.last {
            let now = Instant::now();
            self.ns[phase as usize] += now.duration_since(last).as_nanos() as u64;
            self.calls[phase as usize] += 1;
            self.last = Some(now);
        }
    }

    /// Restarts the stopwatch without attributing the elapsed stretch to any
    /// phase (for un-profiled work between blocks).
    #[inline]
    pub fn skip(&mut self) {
        if self.last.is_some() {
            self.last = Some(Instant::now());
        }
    }

    /// Folds the accumulated laps into `probe` (one atomic add per touched
    /// phase).
    pub fn flush(&self, probe: &PhaseProbe) {
        if self.on {
            for p in Phase::ALL {
                probe.add(p, self.ns[p as usize], self.calls[p as usize]);
            }
        }
    }
}

/// One node's phase totals, as copied out of a [`PhaseProbe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// The probe label (graph node name).
    pub label: String,
    /// Nanoseconds per phase, indexed by `Phase as usize`.
    pub ns: [u64; PHASE_COUNT],
    /// Block calls per phase.
    pub calls: [u64; PHASE_COUNT],
}

impl PhaseSnapshot {
    /// Nanoseconds attributed to one phase.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.ns[phase as usize]
    }

    /// Block calls attributed to one phase.
    pub fn phase_calls(&self, phase: Phase) -> u64 {
        self.calls[phase as usize]
    }

    /// Total nanoseconds across every phase.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }
}

/// Per-node, per-phase totals for a whole prepared graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// One snapshot per instrumented node, in graph order.
    pub nodes: Vec<PhaseSnapshot>,
}

impl PhaseProfile {
    /// Sum of one phase across every node.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.nodes.iter().map(|n| n.phase_ns(phase)).sum()
    }

    /// Total nanoseconds across every node and phase.
    pub fn total_ns(&self) -> u64 {
        self.nodes.iter().map(PhaseSnapshot::total_ns).sum()
    }

    /// Whether any phase of any node recorded time.
    pub fn is_empty(&self) -> bool {
        self.total_ns() == 0
    }

    /// An aligned table: one row per node with time recorded, a phase per
    /// column (milliseconds), plus a totals row.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let ms = |ns: u64| ns as f64 / 1e6;
        let name_w = self
            .nodes
            .iter()
            .filter(|n| n.total_ns() > 0)
            .map(|n| n.label.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        let _ = write!(out, "{:<name_w$}", "node");
        for p in Phase::ALL {
            let _ = write!(out, "  {:>16}", p.name());
        }
        let _ = writeln!(out, "  {:>10}", "total_ms");
        for n in self.nodes.iter().filter(|n| n.total_ns() > 0) {
            let _ = write!(out, "{:<name_w$}", n.label);
            for p in Phase::ALL {
                let _ = write!(out, "  {:>13.3} ms", ms(n.phase_ns(p)));
            }
            let _ = writeln!(out, "  {:>10.3}", ms(n.total_ns()));
        }
        let _ = write!(out, "{:<name_w$}", "all");
        for p in Phase::ALL {
            let _ = write!(out, "  {:>13.3} ms", ms(self.phase_ns(p)));
        }
        let _ = writeln!(out, "  {:>10.3}", ms(self.total_ns()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::test_guard;
    use crate::{install, set_detail, Detail, TraceConfig};

    #[test]
    fn clock_off_attributes_nothing() {
        let _g = test_guard();
        set_detail(Detail::Off);
        let probe = PhaseProbe::new("off-node");
        let mut clock = PhaseClock::start();
        assert!(!clock.is_on());
        clock.lap(Phase::TapGemm);
        clock.flush(&probe);
        assert_eq!(probe.snapshot().total_ns(), 0);
    }

    #[test]
    fn clock_laps_accumulate_into_the_probe() {
        let _g = test_guard();
        install(TraceConfig {
            detail: Detail::Full,
            ring_capacity: 256,
        });
        let probe = PhaseProbe::new("conv1");
        probe.set_trace_id(3);
        let mut clock = PhaseClock::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        clock.lap(Phase::Gather);
        clock.lap(Phase::TapGemm);
        std::thread::sleep(std::time::Duration::from_millis(1));
        clock.skip(); // un-profiled stretch
        clock.lap(Phase::Epilogue);
        clock.flush(&probe);
        set_detail(Detail::Off);
        let snap = probe.snapshot();
        assert_eq!(snap.label, "conv1");
        assert_eq!(probe.trace_id(), 3);
        assert!(snap.phase_ns(Phase::Gather) >= 2_000_000);
        assert_eq!(snap.phase_calls(Phase::Gather), 1);
        assert_eq!(snap.phase_calls(Phase::TapGemm), 1);
        assert!(
            snap.phase_ns(Phase::Epilogue) < 1_000_000,
            "skip() must not attribute the sleep to the next lap"
        );
        assert_eq!(snap.phase_calls(Phase::Scatter), 0);
        probe.reset();
        assert_eq!(probe.snapshot().total_ns(), 0);
    }

    #[test]
    fn profile_reduces_and_renders() {
        let a = PhaseSnapshot {
            label: "conv1".to_string(),
            ns: [10, 20, 300, 40, 50, 5],
            calls: [1; PHASE_COUNT],
        };
        let b = PhaseSnapshot {
            label: "conv2".to_string(),
            ns: [1, 2, 30, 4, 5, 1],
            calls: [2; PHASE_COUNT],
        };
        let quiet = PhaseSnapshot {
            label: "relu".to_string(),
            ns: [0; PHASE_COUNT],
            calls: [0; PHASE_COUNT],
        };
        let profile = PhaseProfile {
            nodes: vec![a, b, quiet],
        };
        assert_eq!(profile.phase_ns(Phase::TapGemm), 330);
        assert_eq!(profile.total_ns(), 468);
        assert!(!profile.is_empty());
        let table = profile.render();
        assert!(table.contains("conv1") && table.contains("conv2"));
        assert!(
            !table.contains("relu"),
            "nodes without recorded time stay out of the table:\n{table}"
        );
        assert!(table.contains("tap_gemm"));
    }
}
