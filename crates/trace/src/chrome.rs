//! Chrome-trace (`chrome://tracing` / Perfetto) JSON export.
//!
//! The exporter renders drained [`Event`]s into the Trace Event Format's
//! JSON-array form: complete events (`"ph":"X"`) for spans, instant events
//! (`"ph":"i"`) for markers, timestamps in fractional microseconds since the
//! trace epoch, one Chrome "thread" per recording thread. Load the file in
//! `chrome://tracing` or <https://ui.perfetto.dev> to see the
//! handler → scheduler → worker → kernel-phase timeline.

use crate::ring::{drain_events, Event, EventKind};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `events` as a Chrome-trace JSON document.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ts_us = e.t0_ns as f64 / 1e3;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{:.3}",
            escape(&e.name),
            e.cat.as_str(),
            e.tid,
            ts_us
        );
        match e.kind {
            EventKind::Span => {
                let _ = write!(out, ",\"ph\":\"X\",\"dur\":{:.3}", e.dur_ns as f64 / 1e3);
            }
            EventKind::Instant => {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            }
        }
        let _ = write!(out, ",\"args\":{{\"id\":{}}}}}", e.id);
    }
    out.push_str("\n]}\n");
    out
}

/// Drains every thread's ring and renders the result — the one-call export.
pub fn export_chrome_trace() -> String {
    chrome_trace_json(&drain_events())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Category;

    fn ev(name: &str, kind: EventKind, t0: u64, dur: u64, id: u64) -> Event {
        Event {
            name: name.to_string(),
            cat: Category::Serve,
            kind,
            t0_ns: t0,
            dur_ns: dur,
            id,
            tid: 2,
        }
    }

    #[test]
    fn spans_and_instants_render_the_trace_event_format() {
        let events = vec![
            ev("request", EventKind::Span, 1_500, 2_000_000, 77),
            ev("enqueue", EventKind::Instant, 2_500, 0, 77),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"name\":\"request\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":2000.000"), "dur is microseconds");
        assert!(json.contains("\"ts\":1.500"), "ts is microseconds");
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"args\":{\"id\":77}"));
        assert!(json.contains("\"cat\":\"serve\""));
    }

    #[test]
    fn names_are_json_escaped() {
        let events = vec![ev("we\"ird\\name\n", EventKind::Instant, 0, 0, 1)];
        let json = chrome_trace_json(&events);
        assert!(json.contains("we\\\"ird\\\\name\\n"));
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn empty_trace_is_still_valid_json_shape() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\":[\n\n]"));
    }
}
